//! Message types for the thread executor.
//!
//! Worker↔worker traffic carries ghost exchanges and live chare
//! migrations; worker↔coordinator traffic carries the AtSync/LB protocol.
//! Everything is `Send` (kernels are boxed `Send` trait objects), which is
//! what makes ownership-transfer migration safe in Rust: a chare is *moved*
//! between threads, never shared.

use crate::checkpoint::ChareCheckpoint;
use crate::program::ChareKernel;
use std::collections::HashMap;
use std::sync::mpsc::Sender;

/// Ghost payload: `(neighbor_index, data)` pairs buffered per iteration.
pub type InboxEntry = Vec<(usize, Vec<f64>)>;

/// Worker-bound messages.
pub enum WorkerMsg {
    /// A ghost message for `chare` at iteration `iter`, sent by `from`.
    ///
    /// Carries the rollback `epoch` it was produced in: ghosts from before
    /// a rollback are stale (their iterations will be replayed) and are
    /// dropped on receipt.
    Ghost {
        /// Destination chare.
        chare: usize,
        /// Iteration the payload feeds.
        iter: usize,
        /// Sending chare (the receiver's neighbor index).
        from: usize,
        /// Payload.
        data: Vec<f64>,
        /// Rollback epoch the ghost belongs to.
        epoch: usize,
    },
    /// A migrating chare: its live kernel plus any buffered ghosts.
    Migrate {
        /// The chare being moved.
        chare: usize,
        /// Its live state.
        kernel: Box<dyn ChareKernel>,
        /// The iteration it will execute next.
        next_iter: usize,
        /// Ghosts it had already received, keyed by iteration.
        pending: HashMap<usize, InboxEntry>,
        /// Rollback epoch; stale migrations are dropped (the chare will be
        /// restored from its checkpoint instead).
        epoch: usize,
    },
    /// A migrating chare shipped as PUPed bytes (Charm++-style serialized
    /// migration; the destination reconstructs via
    /// `IterativeApp::unpack_kernel`).
    MigrateBytes {
        /// The chare being moved.
        chare: usize,
        /// Its packed state.
        bytes: Vec<u8>,
        /// The iteration it will execute next.
        next_iter: usize,
        /// Ghosts it had already received, keyed by iteration.
        pending: HashMap<usize, InboxEntry>,
        /// Rollback epoch; stale migrations are dropped.
        epoch: usize,
    },
    /// Coordinator asks for this window's measurements.
    CollectStats,
    /// Coordinator instructs this worker to emigrate chares: `(chare, to)`.
    DoMigrations(Vec<(usize, usize)>),
    /// LB step finished; resume execution and open a new window.
    Resume,
    /// Coordinator asks for a checkpoint of every chare this worker owns
    /// (the barrier is full, so inboxes are settled; see thread_exec docs
    /// for the delivery-order argument).
    Checkpoint,
    /// A worker died: discard all chare state, adopt the new epoch and the
    /// fresh peer senders (the replacement worker has a new channel), hold
    /// execution, and acknowledge with [`CtrlMsg::RolledBack`].
    Rollback {
        /// The new rollback epoch.
        epoch: usize,
        /// Fresh senders for every PE (index = PE).
        peers: Vec<Sender<WorkerMsg>>,
    },
    /// Re-install a chare from its checkpoint after a rollback. The chare
    /// stays parked until [`WorkerMsg::Resume`].
    Restore(ChareCheckpoint),
    /// Run is over; report final state and exit.
    Shutdown,
}

/// One task measurement in the thread executor (microsecond units).
#[derive(Debug, Clone, Copy)]
pub struct ThreadSample {
    /// Which chare ran.
    pub chare: usize,
    /// Kernel compute time (µs) — the "CPU time" of the paper's Eq. 2.
    pub cpu_us: u64,
    /// Wall extent including injected interference (µs).
    pub wall_us: u64,
}

/// Coordinator-bound messages.
pub enum CtrlMsg {
    /// A chare parked at the AtSync barrier on `pe`.
    Parked {
        /// Reporting worker.
        pe: usize,
        /// The parked chare.
        chare: usize,
        /// Boundary iteration the chare parked at.
        iter: usize,
    },
    /// Reply to `CollectStats`.
    Stats {
        /// Reporting worker.
        pe: usize,
        /// Task measurements since the window opened.
        samples: Vec<ThreadSample>,
        /// Time spent blocked waiting for messages (µs).
        idle_us: u64,
        /// Window wall time (µs).
        window_us: u64,
    },
    /// A migrated chare was installed at its destination.
    MigArrived {
        /// The chare that arrived.
        chare: usize,
    },
    /// A chare completed its final iteration.
    Finished {
        /// The chare that finished.
        chare: usize,
    },
    /// Final report at shutdown: checksums of the chares the worker owns.
    Final {
        /// Reporting worker.
        pe: usize,
        /// `(chare, checksum)` pairs.
        checksums: Vec<(usize, f64)>,
        /// Total task CPU µs executed by this worker over the whole run.
        total_task_us: u64,
    },
    /// Reply to [`WorkerMsg::Checkpoint`]: one snapshot per owned chare,
    /// or `None` if some chare does not implement `pack` (checkpointing
    /// is then permanently unusable for this run).
    CheckpointData {
        /// Reporting worker.
        pe: usize,
        /// Snapshots of every chare this worker owns.
        chares: Option<Vec<ChareCheckpoint>>,
    },
    /// Acknowledges [`WorkerMsg::Rollback`]: all pre-rollback state is
    /// discarded and the worker is holding.
    RolledBack {
        /// Reporting worker.
        pe: usize,
        /// Epoch being acknowledged.
        epoch: usize,
    },
    /// Acknowledges a [`WorkerMsg::Restore`] install.
    Restored {
        /// The re-installed chare.
        chare: usize,
    },
    /// A worker thread died (panic caught by the supervisor shim). Sent
    /// from the dying thread after all its regular messages, so once the
    /// coordinator sees this no further traffic arrives from `pe`.
    WorkerDied {
        /// The dead worker.
        pe: usize,
        /// Rendered panic payload.
        detail: String,
    },
}
