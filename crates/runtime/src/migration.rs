//! Migration commit helpers: applying a plan to the chare→core mapping and
//! costing the data movement.
//!
//! The paper reports wall-clock times that "include the time taken for
//! object migration" (§V), so the simulator must charge for it. The model:
//! migrations out of each source core are serialized on that core's NIC,
//! different cores transfer in parallel, and the LB step ends when the
//! slowest core finishes — plus a fixed strategy/barrier cost.

use crate::error::RuntimeError;
use cloudlb_balance::Migration;
use cloudlb_sim::{Dur, NetworkModel};

/// What [`commit`] did with a plan: how many entries were applied, and a
/// typed [`RuntimeError::StalePlan`] per entry that was skipped because its
/// `from` disagreed with the live mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommitOutcome {
    /// Plan entries actually applied to the mapping.
    pub applied: usize,
    /// One `StalePlan` error per skipped entry, in plan order.
    pub skipped: Vec<RuntimeError>,
}

impl CommitOutcome {
    /// `true` when every entry committed.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// Apply `plan` to `mapping` (chare index → core). A migration whose
/// `from` disagrees with the mapping was planned against a stale snapshot
/// (the chare moved — or its transfer aborted — since planning); it
/// degrades to a skipped entry rather than aborting the run, and the
/// remaining entries still commit. A plan referencing an unknown chare is
/// still a runtime bug and panics.
pub fn commit(mapping: &mut [usize], plan: &[Migration]) -> CommitOutcome {
    let mut out = CommitOutcome::default();
    for m in plan {
        let slot = &mut mapping[m.task.0 as usize];
        if *slot != m.from {
            out.skipped.push(RuntimeError::StalePlan {
                task: m.task.0,
                expected: m.from,
                actual: *slot,
            });
            continue;
        }
        *slot = m.to;
        out.applied += 1;
    }
    out
}

/// Wall-clock duration of committing `plan`: per-source-core serialized
/// transfers, cores in parallel, so the cost is the max per-core sum.
pub fn transfer_time(
    plan: &[Migration],
    net: &NetworkModel,
    state_bytes: impl Fn(usize) -> usize,
    same_node: impl Fn(usize, usize) -> bool,
    num_pes: usize,
) -> Dur {
    let mut per_src = vec![Dur::ZERO; num_pes];
    for m in plan {
        let bytes = state_bytes(m.task.0 as usize);
        per_src[m.from] += net.migration_delay(bytes, same_node(m.from, m.to));
    }
    per_src.into_iter().max().unwrap_or(Dur::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_balance::TaskId;

    fn mig(task: u64, from: usize, to: usize) -> Migration {
        Migration { task: TaskId(task), from, to }
    }

    #[test]
    fn commit_rewrites_mapping() {
        let mut mapping = vec![0, 0, 1, 1];
        let out = commit(&mut mapping, &[mig(0, 0, 2), mig(3, 1, 0)]);
        assert_eq!(mapping, vec![2, 0, 1, 0]);
        assert_eq!(out.applied, 2);
        assert!(out.is_clean());
    }

    #[test]
    fn commit_skips_stale_entries_and_applies_the_rest() {
        // Task 0's entry is stale (it lives on 1, not 0); task 1's is good.
        let mut mapping = vec![1, 0];
        let out = commit(&mut mapping, &[mig(0, 0, 2), mig(1, 0, 3)]);
        assert_eq!(mapping, vec![1, 3], "stale entry skipped, good entry applied");
        assert_eq!(out.applied, 1);
        assert_eq!(
            out.skipped,
            vec![RuntimeError::StalePlan { task: 0, expected: 0, actual: 1 }]
        );
        assert!(!out.is_clean());
        let msg = out.skipped[0].to_string();
        assert!(msg.contains("stale plan"), "{msg}");
    }

    #[test]
    fn transfer_time_is_max_over_sources() {
        let net = NetworkModel::default();
        // Two migrations from core 0 (serialized), one from core 1.
        let plan = vec![mig(0, 0, 2), mig(1, 0, 3), mig(2, 1, 2)];
        let t = transfer_time(&plan, &net, |_| 1_000_000, |_, _| false, 4);
        let single = net.migration_delay(1_000_000, false);
        assert_eq!(t, single + single);
    }

    #[test]
    fn intra_node_migrations_are_cheaper() {
        let net = NetworkModel::default();
        let plan = vec![mig(0, 0, 1)];
        let near = transfer_time(&plan, &net, |_| 1_000_000, |_, _| true, 2);
        let far = transfer_time(&plan, &net, |_| 1_000_000, |_, _| false, 2);
        assert!(near < far);
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let net = NetworkModel::default();
        assert_eq!(transfer_time(&[], &net, |_| 0, |_, _| true, 4), Dur::ZERO);
    }
}
