//! In-memory chare checkpoints (Charm++-style double checkpointing).
//!
//! At selected AtSync boundaries every chare PUPs its state (the same
//! codec that serialized migration uses, [`crate::pup`]) together with the
//! ghost messages it has already buffered for the upcoming iteration.
//! A PE failure then rolls the whole application back to the last
//! checkpointed iteration — the classic global-rollback protocol: cheap,
//! simple, and exactly what Charm++'s in-memory double checkpointing does
//! when a buddy copy survives.
//!
//! Placement follows the buddy scheme: the checkpoint of a chare living on
//! PE `p` is *owned* by `p` and *replicated* on `buddy(p) = (p + 1) mod P`.
//! In the in-process thread executor both copies live in the coordinator's
//! address space, so the buddy assignment only selects which surviving PE
//! re-hosts the chare after a failure and (in the simulator) which link the
//! recovery transfer is charged to. The DES executor prices the recovery:
//! restoring a lost chare costs one `state_bytes` transfer from its buddy.

use crate::msg::InboxEntry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// When an executor snapshots all chares. Shared by the thread executor
/// (PUPed kernel bytes) and the DES executor (iteration + mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CheckpointPolicy {
    /// Checkpoint at every AtSync boundary (default).
    #[default]
    EveryBoundary,
    /// Checkpoint only at boundaries whose iteration is a multiple of the
    /// given period (lets tests exercise "checkpoint period > LB period").
    Period(usize),
    /// Never checkpoint; failures are then unrecoverable and end the run
    /// with an error.
    Disabled,
}

impl CheckpointPolicy {
    /// `true` when a snapshot should be taken at the AtSync boundary
    /// before iteration `boundary_iter`.
    pub fn due(self, boundary_iter: usize) -> bool {
        match self {
            CheckpointPolicy::Disabled => false,
            CheckpointPolicy::EveryBoundary => true,
            CheckpointPolicy::Period(k) => k > 0 && boundary_iter.is_multiple_of(k),
        }
    }
}

/// Buddy PE that holds the replica of `pe`'s checkpoints.
pub fn buddy_of(pe: usize, pes: usize) -> usize {
    debug_assert!(pes > 0);
    (pe + 1) % pes
}

/// Snapshot of one chare at an AtSync boundary.
#[derive(Debug, Clone)]
pub struct ChareCheckpoint {
    /// The chare.
    pub chare: usize,
    /// PUPed kernel state ([`crate::program::ChareKernel::pack`]).
    pub bytes: Vec<u8>,
    /// Iteration the chare will execute next when restored.
    pub next_iter: usize,
    /// Ghosts already buffered at snapshot time, keyed by iteration.
    /// Restoring replays these instead of re-requesting them — the
    /// senders' iterations predate the checkpoint and will not re-run.
    pub pending: Vec<(usize, InboxEntry)>,
    /// PE that owned the chare at snapshot time (its buddy holds the
    /// replica; see [`buddy_of`]).
    pub owner: usize,
}

/// The latest complete application checkpoint.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    /// Iteration the snapshot belongs to (all chares restart here).
    pub iter: usize,
    /// One entry per chare.
    pub chares: BTreeMap<usize, ChareCheckpoint>,
    /// `false` once any chare failed to PUP — recovery is then impossible
    /// for the rest of the run (the app does not implement `pack`).
    pub usable: bool,
}

impl CheckpointStore {
    /// An empty, unusable store.
    pub fn disabled() -> Self {
        CheckpointStore { iter: 0, chares: BTreeMap::new(), usable: false }
    }

    /// Replace the snapshot with a complete set of chare checkpoints.
    pub fn install(&mut self, iter: usize, chares: Vec<ChareCheckpoint>) {
        self.iter = iter;
        self.chares = chares.into_iter().map(|c| (c.chare, c)).collect();
    }

    /// `true` when the store holds a restorable snapshot of all `n` chares.
    pub fn restorable(&self, n: usize) -> bool {
        self.usable && self.chares.len() == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_due_schedule() {
        assert!(CheckpointPolicy::EveryBoundary.due(3));
        assert!(!CheckpointPolicy::Disabled.due(3));
        let p = CheckpointPolicy::Period(4);
        assert!(p.due(4) && p.due(8));
        assert!(!p.due(2) && !p.due(6));
        assert!(!CheckpointPolicy::Period(0).due(4));
    }

    #[test]
    fn buddy_wraps_around() {
        assert_eq!(buddy_of(0, 4), 1);
        assert_eq!(buddy_of(3, 4), 0);
        assert_eq!(buddy_of(0, 1), 0);
    }

    #[test]
    fn store_tracks_completeness() {
        let mut s = CheckpointStore { usable: true, ..Default::default() };
        assert!(!s.restorable(2));
        s.install(
            4,
            vec![
                ChareCheckpoint { chare: 0, bytes: vec![1], next_iter: 4, pending: vec![], owner: 0 },
                ChareCheckpoint { chare: 1, bytes: vec![2], next_iter: 4, pending: vec![], owner: 1 },
            ],
        );
        assert!(s.restorable(2));
        s.usable = false;
        assert!(!s.restorable(2));
        assert!(!CheckpointStore::disabled().restorable(0));
    }
}
