//! AtSync-style load-balancing barrier.
//!
//! Charm++ applications call `AtSync()` at iteration boundaries; the LB
//! framework waits for every chare, runs the strategy, migrates, and then
//! resumes all of them. This module holds that state machine: which
//! iterations are LB boundaries, which chares have arrived, and when the
//! barrier is full.

/// Barrier state for periodic load balancing.
#[derive(Debug)]
pub struct AtSync {
    period: usize,
    /// Chares currently parked at the barrier.
    held: Vec<usize>,
    in_lb: bool,
}

impl AtSync {
    /// Balance every `period` iterations (`period >= 1`).
    pub fn new(period: usize) -> Self {
        assert!(period >= 1, "LB period must be >= 1");
        AtSync { period, held: Vec::new(), in_lb: false }
    }

    /// `true` if a chare about to start `iter` must park at the barrier
    /// first. Boundaries fall *before* iterations `period, 2·period, …` —
    /// never before iteration 0 (nothing has been measured yet).
    pub fn is_boundary(&self, iter: usize) -> bool {
        iter > 0 && iter.is_multiple_of(self.period)
    }

    /// Park a chare at the barrier. Returns `true` when it was the
    /// `expected`-th arrival, i.e. the barrier is full and LB may start.
    pub fn park(&mut self, chare: usize, expected: usize) -> bool {
        debug_assert!(!self.held.contains(&chare), "chare {chare} parked twice");
        self.held.push(chare);
        self.held.len() == expected
    }

    /// Number of chares currently parked.
    pub fn parked(&self) -> usize {
        self.held.len()
    }

    /// Mark the LB step as running (blocks task starts in the executors).
    pub fn begin_lb(&mut self) {
        debug_assert!(!self.in_lb);
        self.in_lb = true;
    }

    /// `true` while the LB step (strategy + migration) is in progress.
    pub fn lb_in_progress(&self) -> bool {
        self.in_lb
    }

    /// Finish the LB step and release all parked chares (sorted for
    /// determinism).
    pub fn release(&mut self) -> Vec<usize> {
        debug_assert!(self.in_lb);
        self.in_lb = false;
        let mut out = std::mem::take(&mut self.held);
        out.sort_unstable();
        out
    }

    /// Drop all barrier state (recovery rollback: parked chares are about
    /// to be rewound to a checkpoint and will park again during replay).
    pub fn reset(&mut self) {
        self.held.clear();
        self.in_lb = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_every_period() {
        let b = AtSync::new(5);
        assert!(!b.is_boundary(0));
        assert!(!b.is_boundary(4));
        assert!(b.is_boundary(5));
        assert!(!b.is_boundary(6));
        assert!(b.is_boundary(10));
    }

    #[test]
    fn period_one_balances_every_iteration() {
        let b = AtSync::new(1);
        assert!(!b.is_boundary(0));
        assert!(b.is_boundary(1));
        assert!(b.is_boundary(2));
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_period_rejected() {
        AtSync::new(0);
    }

    #[test]
    fn barrier_fills_then_releases_sorted() {
        let mut b = AtSync::new(2);
        assert!(!b.park(2, 3));
        assert!(!b.park(0, 3));
        assert_eq!(b.parked(), 2);
        assert!(b.park(1, 3));
        b.begin_lb();
        assert!(b.lb_in_progress());
        assert_eq!(b.release(), vec![0, 1, 2]);
        assert!(!b.lb_in_progress());
        assert_eq!(b.parked(), 0);
    }

    #[test]
    fn reset_clears_partial_barrier() {
        let mut b = AtSync::new(2);
        b.park(0, 3);
        b.park(1, 3);
        b.reset();
        assert_eq!(b.parked(), 0);
        assert!(!b.lb_in_progress());
        // The same chares may park again during replay.
        assert!(!b.park(0, 2));
        assert!(b.park(1, 2));
    }
}
