#![warn(missing_docs)]
//! A migratable-objects runtime in the spirit of Charm++, built for
//! studying cloud interference.
//!
//! The paper's scheme lives inside the Charm++ adaptive runtime: an
//! application is over-decomposed into many medium-grained *chares*, the
//! runtime measures how long each chare's work takes, and a periodic load
//! balancing step migrates chares between cores. No Rust actor crate
//! supports object migration, so this crate rebuilds the needed runtime
//! from scratch:
//!
//! * [`program::IterativeApp`] — how an application describes its
//!   decomposition (chare count, neighbor topology, per-iteration task
//!   costs, real compute kernels);
//! * [`lbdb`] — the load-balancing database: per-task measurements plus
//!   the paper's Eq. 2 background-load estimation from `/proc/stat` idle
//!   counters;
//! * [`atsync`] — the AtSync-style barrier at which load balancing runs;
//! * [`sim_exec`] — a deterministic executor driving the application over
//!   the `cloudlb-sim` cluster (virtual time, interference, power) — all
//!   paper figures are produced with it;
//! * [`thread_exec`] — a real multi-threaded executor: chares are live
//!   objects executing real kernels on OS worker threads and migrating
//!   between them through channels, demonstrating that the runtime design
//!   is not simulation-only;
//! * [`checkpoint`] and [`error`] — fault tolerance: in-memory chare
//!   checkpoints taken at AtSync boundaries, global rollback/restore after
//!   a PE failure, and the typed errors returned by the supervised
//!   executor instead of panicking;
//! * [`netproto`] — the reliable migration protocol (sequence numbers,
//!   ACKs, capped-backoff retries, per-migration deadlines) that turns a
//!   flaky network's losses into deterministic commit/abort outcomes.
//!
//! Both executors share the instrumentation and the strategy interface, so
//! a strategy validated under the simulator runs unchanged on threads.
//!
//! [`ampi`] adds the paper's AMPI angle: MPI-shaped bulk-synchronous
//! programs adapt onto the runtime as rank-chares and become migratable
//! without modification.

pub mod ampi;
pub mod atsync;
pub mod checkpoint;
pub mod comm;
pub mod config;
pub mod fastforward;
pub mod error;
pub mod lbdb;
pub mod migration;
pub mod msg;
pub mod netproto;
pub mod program;
pub mod pup;
pub mod reduction;
pub mod result;
pub mod sim_exec;
pub mod thread_exec;

pub use checkpoint::{buddy_of, ChareCheckpoint, CheckpointStore};
pub use comm::CommCsr;
pub use config::{FastForward, InitialMap, InstrumentMode, LbConfig, RunConfig};
pub use error::RuntimeError;
pub use netproto::{MigrationProto, TransferOutcome};
pub use program::{ChareKernel, IterativeApp};
pub use result::{ElasticStats, RunResult};
pub use sim_exec::SimExecutor;
pub use thread_exec::{CheckpointPolicy, ThreadExecutor, ThreadFault, ThreadRunConfig};
