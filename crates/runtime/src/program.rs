//! Application interface: how an iterative HPC program describes itself to
//! the runtime.
//!
//! The paper's applications (Jacobi2D, Wave2D, Mol3D) are tightly coupled
//! iterative codes decomposed into chare arrays. The runtime needs two
//! views of such a program:
//!
//! * a **shape/cost view** ([`IterativeApp`]) — chare count, neighbor
//!   topology, message and state sizes, and a per-iteration CPU-cost model
//!   used by the deterministic simulator;
//! * a **real-compute view** ([`ChareKernel`]) — live state plus an actual
//!   numerical kernel, used by the thread executor (and by validation
//!   tests that compare against a serial reference).

/// A live, migratable chare: owns state and performs real computation.
///
/// Kernels are `Send` so the thread executor can migrate them between
/// worker threads — the Rust equivalent of Charm++ PUP-based migration,
/// with ownership transfer playing the role of pack/unpack.
pub trait ChareKernel: Send {
    /// Execute one iteration. `inbox` holds `(neighbor_index, ghost_data)`
    /// pairs from every neighbor, sorted by neighbor index (an executor
    /// protocol guarantee, so floating-point accumulation order — and thus
    /// checksums — cannot depend on message timing). Returns the ghost
    /// data to send for the *next* iteration as `(neighbor_index, data)`.
    fn compute(&mut self, iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)>;

    /// Order-independent digest of the state, for migration-safety tests.
    fn checksum(&self) -> f64;

    /// Approximate size of migratable state in bytes.
    fn state_bytes(&self) -> usize;

    /// PUP the kernel's state into bytes for serialized migration
    /// (Charm++-style). `None` (the default) means the kernel only
    /// supports ownership-move migration.
    fn pack(&self) -> Option<Vec<u8>> {
        None
    }
}

/// An iterative chare-array application.
pub trait IterativeApp: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Number of chares (the paper over-decomposes: several per core).
    fn num_chares(&self) -> usize;

    /// Neighbors of chare `idx` — it must receive one message from each of
    /// them before running an iteration, and sends one to each afterwards.
    fn neighbors(&self, idx: usize) -> Vec<usize>;

    /// Ghost-message payload size in bytes between two neighbors.
    fn message_bytes(&self, from: usize, to: usize) -> usize;

    /// Migratable state size of chare `idx` in bytes.
    fn state_bytes(&self, idx: usize) -> usize;

    /// CPU seconds chare `idx`'s task needs at iteration `iter` (simulator
    /// cost model; calibrated against the real kernel).
    fn task_cost(&self, idx: usize, iter: usize) -> f64;

    /// Instantiate the real kernel for chare `idx` (thread executor).
    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel>;

    /// Reconstruct chare `idx` from bytes produced by
    /// [`ChareKernel::pack`]. `None` (the default) means the app does not
    /// support serialized migration.
    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        let _ = (idx, bytes);
        None
    }
}

/// Sanity-check an application's topology: neighbor indices in range, no
/// self-edges, symmetry (stencil exchanges are bidirectional), positive
/// costs. Panics with a description on violation.
pub fn validate_app(app: &dyn IterativeApp) {
    let n = app.num_chares();
    assert!(n > 0, "{}: no chares", app.name());
    for i in 0..n {
        for j in app.neighbors(i) {
            assert!(j < n, "{}: chare {i} has out-of-range neighbor {j}", app.name());
            assert_ne!(i, j, "{}: chare {i} neighbors itself", app.name());
            assert!(
                app.neighbors(j).contains(&i),
                "{}: edge {i}->{j} not symmetric",
                app.name()
            );
            assert!(app.message_bytes(i, j) > 0, "{}: empty message {i}->{j}", app.name());
        }
        assert!(
            app.task_cost(i, 0).is_finite() && app.task_cost(i, 0) >= 0.0,
            "{}: bad cost for chare {i}",
            app.name()
        );
    }
}

/// A minimal synthetic app used by runtime unit tests: a ring of chares
/// with uniform (or per-chare) costs and tiny real kernels that accumulate
/// neighbor values (so migration correctness is observable).
#[derive(Debug, Clone)]
pub struct SyntheticApp {
    /// Number of chares in the ring.
    pub chares: usize,
    /// Per-chare CPU seconds per iteration.
    pub cost_s: Vec<f64>,
    /// Ghost size in bytes.
    pub msg_bytes: usize,
    /// State size in bytes.
    pub state_bytes: usize,
}

impl SyntheticApp {
    /// Uniform ring: `chares` chares each costing `cost_s` per iteration.
    pub fn ring(chares: usize, cost_s: f64) -> Self {
        assert!(chares >= 3, "ring needs >= 3 chares");
        SyntheticApp { chares, cost_s: vec![cost_s; chares], msg_bytes: 64, state_bytes: 4096 }
    }
}

impl IterativeApp for SyntheticApp {
    fn name(&self) -> &'static str {
        "synthetic-ring"
    }

    fn num_chares(&self) -> usize {
        self.chares
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        let n = self.chares;
        vec![(idx + n - 1) % n, (idx + 1) % n]
    }

    fn message_bytes(&self, _from: usize, _to: usize) -> usize {
        self.msg_bytes
    }

    fn state_bytes(&self, _idx: usize) -> usize {
        self.state_bytes
    }

    fn task_cost(&self, idx: usize, _iter: usize) -> f64 {
        self.cost_s[idx]
    }

    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel> {
        Box::new(RingKernel {
            neighbors: self.neighbors(idx),
            value: idx as f64,
            acc: 0.0,
            bytes: self.state_bytes,
        })
    }

    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        let mut r = crate::pup::PupReader::new(bytes);
        let kernel = RingKernel {
            neighbors: self.neighbors(idx),
            value: r.f64(),
            acc: r.f64(),
            bytes: self.state_bytes,
        };
        assert!(r.exhausted(), "trailing bytes in ring-kernel PUP buffer");
        Some(Box::new(kernel))
    }
}

/// Kernel for [`SyntheticApp`]: exchanges its value with both ring
/// neighbors and accumulates what it hears. It knows its neighbor list so
/// it can send ghosts on iteration 0, before anything has arrived.
#[derive(Debug)]
struct RingKernel {
    neighbors: Vec<usize>,
    value: f64,
    acc: f64,
    bytes: usize,
}

impl ChareKernel for RingKernel {
    fn compute(&mut self, _iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        for (_, data) in inbox {
            self.acc += data.iter().sum::<f64>();
        }
        self.value += 1.0;
        self.neighbors.iter().map(|&n| (n, vec![self.value])).collect()
    }

    fn checksum(&self) -> f64 {
        self.value + self.acc
    }

    fn state_bytes(&self) -> usize {
        self.bytes
    }

    fn pack(&self) -> Option<Vec<u8>> {
        let mut w = crate::pup::PupWriter::new();
        w.f64(self.value).f64(self.acc);
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_ring_is_valid() {
        validate_app(&SyntheticApp::ring(8, 0.001));
    }

    #[test]
    fn ring_neighbors_wrap() {
        let app = SyntheticApp::ring(5, 0.001);
        assert_eq!(app.neighbors(0), vec![4, 1]);
        assert_eq!(app.neighbors(4), vec![3, 0]);
    }

    #[test]
    #[should_panic(expected = ">= 3 chares")]
    fn tiny_ring_rejected() {
        SyntheticApp::ring(2, 0.001);
    }

    #[test]
    fn kernel_computes_and_checksums() {
        let app = SyntheticApp::ring(4, 0.001);
        let mut k = app.make_kernel(1);
        let before = k.checksum();
        let out = k.compute(0, &[(0, vec![2.0]), (2, vec![3.0])]);
        assert_eq!(out.len(), 2);
        assert!(k.checksum() > before);
        assert!(k.state_bytes() > 0);
    }

    struct Broken;
    impl IterativeApp for Broken {
        fn name(&self) -> &'static str {
            "broken"
        }
        fn num_chares(&self) -> usize {
            2
        }
        fn neighbors(&self, idx: usize) -> Vec<usize> {
            if idx == 0 {
                vec![1]
            } else {
                vec![] // asymmetric!
            }
        }
        fn message_bytes(&self, _: usize, _: usize) -> usize {
            1
        }
        fn state_bytes(&self, _: usize) -> usize {
            1
        }
        fn task_cost(&self, _: usize, _: usize) -> f64 {
            0.0
        }
        fn make_kernel(&self, _: usize) -> Box<dyn ChareKernel> {
            unimplemented!()
        }
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn validate_catches_asymmetry() {
        validate_app(&Broken);
    }
}
