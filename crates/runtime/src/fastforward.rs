//! Steady-state fast-forward: window templates for analytic macro-stepping.
//!
//! Between two LB events a clean run is *periodic*: every chare executes
//! exactly `period` iterations, the event pattern repeats window after
//! window, and — because the simulator does all of its accounting in
//! integer microseconds with no background sharing — the whole window is
//! **translation-invariant**: shifting the window start by Δ shifts every
//! event in it by exactly Δ and changes no duration, counter delta, or
//! tie-break. The executor exploits this by *capturing* one live window
//! into a [`WindowTemplate`] (relative event times, per-core counter
//! deltas, message flows) and *replaying* it over later windows in O(n ×
//! period) instead of simulating every message/wake/completion event.
//!
//! A window is only captured/replayed when it is provably steady-state:
//!
//! * no background job resident anywhere (GPS sharing is
//!   segmentation-dependent, so only bg-free windows are exact);
//! * nothing in the event queue except current-epoch ghost messages for
//!   the boundary iteration (pending interference, failure, or stale
//!   events decline the window);
//! * the network is deterministic over the window (no stochastic chaos
//!   knobs; no partition window opening before the window ends);
//! * task costs are noise-free and match the template bit-for-bit;
//! * the chare→core mapping and alive mask match the template.
//!
//! Anything else falls back to the event-by-event path for that window, so
//! fast-forwarded runs are bit-identical to `fast_forward: off` in every
//! `RunResult` field except the two observability counters
//! (`ff_windows`, `events_skipped`), which
//! [`crate::result::RunResult::scrub_ff`] zeroes for differential tests.
//! The equivalence argument is spelled out in `DESIGN.md`.
//!
//! The capture/replay driver lives in [`crate::sim_exec`]; this module
//! holds the plain-data template types.

use cloudlb_sim::core_sched::CoreStat;
use cloudlb_sim::{Dur, Time};

/// One task completion inside a captured window, in completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfSample {
    /// Completion instant relative to the window start.
    pub rel: Dur,
    /// The chare that completed.
    pub chare: usize,
    /// Iteration offset from the window's boundary iteration.
    pub iter_off: usize,
    /// CPU time charged (what the LB database records).
    pub cpu: Dur,
    /// Wall time observed (equals `cpu` in bg-free windows, but kept
    /// verbatim so `InstrumentMode::WallTime` replays exactly).
    pub wall: Dur,
}

/// A window-start fingerprint: the in-flight boundary ghosts in
/// event-queue sequence order plus the sorted `(chare, count)` inbox
/// contents. Two windows with equal fingerprints start from identical
/// messaging state.
pub type WindowStart = (Vec<FfMsg>, Vec<(usize, usize)>);

/// One ghost message crossing a window edge (in flight at the window's
/// start or end), in event-queue sequence order so FIFO tie-breaks replay
/// identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FfMsg {
    /// Scheduled arrival relative to the window start.
    pub rel: Dur,
    /// Destination chare.
    pub chare: usize,
}

/// Everything needed to replay one steady-state LB window analytically.
///
/// Captured from a live window spanning `[R, R + dur]`, where `R` is the
/// post-LB release instant and `R + dur` is the instant the last chare
/// parks at the next AtSync barrier. Replaying at a later release `R'`
/// advances the cluster to `R' + dur` in one step and reproduces, bit for
/// bit, every externally visible effect the simulated window would have
/// had: iteration completion times, LB-database samples, counter deltas,
/// message counters, queue statistics, and the exact queue contents at the
/// next barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowTemplate {
    /// Window length (release → last park).
    pub dur: Dur,
    /// chare→core mapping the window ran under.
    pub mapping: Vec<usize>,
    /// Core liveness mask the window ran under.
    pub alive: Vec<bool>,
    /// `task_cost(chare, boundary + off).to_bits()` for every chare ×
    /// offset, chare-major — replay validity requires bit-equality so
    /// iteration-dependent applications safely decline.
    pub cost_bits: Vec<u64>,
    /// Ghost messages in flight at the window start (sequence order).
    pub start_inflight: Vec<FfMsg>,
    /// Inbox counts `(chare, ghosts_received)` for the boundary iteration
    /// at the window start, sorted by chare.
    pub start_inbox: Vec<(usize, usize)>,
    /// Ghost messages in flight at the window end (sequence order).
    pub end_inflight: Vec<FfMsg>,
    /// Inbox counts for the next boundary iteration at the window end.
    pub end_inbox: Vec<(usize, usize)>,
    /// Every task completion, chronologically.
    pub samples: Vec<FfSample>,
    /// Per-core counter deltas accumulated across the window.
    pub stat_delta: Vec<CoreStat>,
    /// Intra-node ghost messages sent during the window.
    pub local_msgs: u64,
    /// Cross-node ghost messages sent during the window.
    pub remote_msgs: u64,
    /// Event-queue pops the window consumed (credited to
    /// `events_skipped` on replay so `sim_events` stays identical).
    pub events_popped: u64,
    /// How far the window raised the live queue depth above its starting
    /// level (replayed via `EventQueue::raise_peak`).
    pub peak_delta: usize,
}

/// In-progress capture state while a candidate window runs live.
#[derive(Debug)]
pub struct Capture {
    /// The release instant `R` the window started at.
    pub started_at: Time,
    /// The boundary iteration the window starts from.
    pub boundary: usize,
    /// Ground-truth per-core counters at `R` (delta basis).
    pub start_stat: Vec<CoreStat>,
    /// Queue pops at `R` (delta basis for `events_popped`).
    pub start_popped: u64,
    /// Live queue depth at `R` (delta basis for `peak_delta`).
    pub live_at_start: usize,
    /// `local_msgs` counter at `R`.
    pub start_local: u64,
    /// `remote_msgs` counter at `R`.
    pub start_remote: u64,
    /// Mapping snapshot (constant across the window).
    pub mapping: Vec<usize>,
    /// Alive-mask snapshot (constant across a disturbance-free window).
    pub alive: Vec<bool>,
    /// Cost fingerprint for the window's iterations.
    pub cost_bits: Vec<u64>,
    /// In-flight ghosts at `R`, sequence-ordered.
    pub start_inflight: Vec<FfMsg>,
    /// Boundary-iteration inbox counts at `R`, sorted by chare.
    pub start_inbox: Vec<(usize, usize)>,
    /// Task completions recorded as the window runs.
    pub samples: Vec<FfSample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_roundtrips_relative_times() {
        // Translation invariance in miniature: applying a template at two
        // different release instants yields identically shifted schedules.
        let msg = FfMsg { rel: Dur::from_us(1_500), chare: 3 };
        let r1 = Time::from_us(10_000);
        let r2 = Time::from_us(77_000);
        assert_eq!((r1 + msg.rel).since(r1), (r2 + msg.rel).since(r2));
    }

    #[test]
    fn sample_offsets_are_window_relative() {
        let s = FfSample {
            rel: Dur::from_us(42),
            chare: 7,
            iter_off: 3,
            cpu: Dur::from_us(40),
            wall: Dur::from_us(42),
        };
        // Applying at boundary 20 places the sample at iteration 23.
        assert_eq!(20 + s.iter_off, 23);
        assert!(s.wall >= s.cpu);
    }
}
