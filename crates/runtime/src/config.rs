//! Run configuration shared by both executors.

use crate::checkpoint::CheckpointPolicy;
use crate::netproto::MigrationProto;
use cloudlb_sim::{ClusterConfig, NetworkModel, PowerModel};
use serde::{Deserialize, Serialize};

/// How per-task loads are measured for the LB database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InstrumentMode {
    /// Per-task CPU time (what the paper's Eq. 2 assumes the Charm++ LB
    /// database provides). Interference shows up only through `O_p`.
    #[default]
    CpuTime,
    /// Per-task wall time. Reproduces the Projections artifact the paper
    /// describes: task measurements are inflated by background context
    /// switches, and `O_p` only captures interference outside task windows.
    WallTime,
}

/// Whether the steady-state fast-forward engine may macro-step the
/// iteration loop between LB events (see `crate::sim_exec`'s window
/// capture/replay machinery). Replayed windows are bit-identical to the
/// event-by-event path in every observable metric; the engine declines any
/// window touched by interference, failures, stochastic network chaos or
/// task-cost noise, so correctness never depends on this knob.
/// In scenario JSON the mode is the variant name (`"On"`, `"Off"`,
/// `"Auto"`, like every other enum in the config surface); the CLI's
/// `--fast-forward` flag accepts the lowercase forms via
/// [`FastForward::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FastForward {
    /// Never macro-step; every event is simulated individually.
    Off,
    /// Macro-step every provably steady-state window, even under
    /// Projections tracing — coalesced windows then appear as single
    /// `FastForward` intervals, so the *timeline* (and only the timeline)
    /// is lossy.
    On,
    /// Macro-step unless tracing is enabled (the default): timelines stay
    /// exact, everything else gets the speedup.
    #[default]
    Auto,
}

impl FastForward {
    /// Parse a CLI value. Accepts `on`, `off`, `auto`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "on" => Ok(FastForward::On),
            "off" => Ok(FastForward::Off),
            "auto" => Ok(FastForward::Auto),
            _ => Err(format!("unknown fast-forward mode {s:?} (expected on|off|auto)")),
        }
    }
}

/// Initial chare→core placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InitialMap {
    /// Contiguous blocks of chares per core (Charm++ default for arrays).
    #[default]
    Block,
    /// Chare `i` on core `i mod P`.
    RoundRobin,
}

impl InitialMap {
    /// Compute the placement of `chares` chares over `pes` cores.
    pub fn place(self, chares: usize, pes: usize) -> Vec<usize> {
        assert!(pes > 0, "no PEs");
        match self {
            InitialMap::Block => {
                // Split as evenly as possible into contiguous runs.
                (0..chares).map(|i| i * pes / chares.max(1)).map(|p| p.min(pes - 1)).collect()
            }
            InitialMap::RoundRobin => (0..chares).map(|i| i % pes).collect(),
        }
    }
}

/// Load-balancing framework configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LbConfig {
    /// Strategy name resolved via `cloudlb_balance::strategy::by_name`
    /// (`nolb`, `greedy`, `greedybg`, `refine`, `cloudrefine`).
    pub strategy: String,
    /// Invoke the balancer every `period` iterations (the paper's periodic
    /// load balancing, §III). Must be ≥ 1.
    pub period: usize,
    /// Fixed cost of one LB step (strategy run + barrier), seconds.
    pub step_cost_s: f64,
    /// How task loads are measured.
    pub instrument: InstrumentMode,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            strategy: "cloudrefine".to_string(),
            period: 20,
            step_cost_s: 0.002,
            instrument: InstrumentMode::CpuTime,
        }
    }
}

impl LbConfig {
    /// The `noLB` baseline with the same period bookkeeping.
    pub fn nolb() -> Self {
        LbConfig { strategy: "nolb".to_string(), ..Default::default() }
    }

    /// Resolve the configured strategy, reporting unknown names as a
    /// typed error (the fuzzable path — `SimExecutor::try_run` uses this).
    pub fn try_strategy(&self) -> Result<Box<dyn cloudlb_balance::LbStrategy>, String> {
        cloudlb_balance::strategy::by_name(&self.strategy)
            .ok_or_else(|| format!("unknown LB strategy {:?}", self.strategy))
    }

    /// Resolve the configured strategy. Panics on unknown names; callers
    /// holding untrusted config should prefer [`LbConfig::try_strategy`].
    pub fn make_strategy(&self) -> Box<dyn cloudlb_balance::LbStrategy> {
        self.try_strategy().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Full configuration of a simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Cluster shape (nodes × cores).
    pub cluster: ClusterConfig,
    /// Network delays for ghost messages and migrations.
    pub network: NetworkModel,
    /// Node power model for energy accounting.
    pub power: PowerModel,
    /// Load-balancing setup.
    pub lb: LbConfig,
    /// Number of application iterations to run.
    pub iterations: usize,
    /// Initial placement.
    pub initial_map: InitialMap,
    /// RNG seed (task-cost noise and any randomized interference).
    pub seed: u64,
    /// Multiplicative per-execution task-cost noise: each task execution
    /// costs `task_cost × (1 + U(−f, f))` for `f = cost_noise_frac`,
    /// deterministically derived from `(seed, chare, iteration)`. Zero
    /// (the default) matches the paper's assumption that "future loads
    /// will be almost the same as measured loads (principle of
    /// persistence)"; the ABL-NOISE ablation stresses that assumption.
    pub cost_noise_frac: f64,
    /// Relative speed of each core (empty = uniform 1.0). Models the other
    /// "extraneous factor" the paper names in §IV — "VM to physical
    /// machine mapping": a VM placed on slower or oversubscribed hardware
    /// delivers fewer cycles per wall second. Task occupancy becomes
    /// `task_cost / speed[pe]`, which the LB database measures like any
    /// other load, so the balancer handles static heterogeneity with the
    /// same machinery it uses for interference.
    pub pe_speeds: Vec<f64>,
    /// When to snapshot chare state for fault tolerance (at AtSync
    /// boundaries, after the migration commit). Failure-free runs may
    /// disable this; runs with kill actions require it.
    #[serde(default)]
    pub checkpoints: CheckpointPolicy,
    /// Failure-detection latency in seconds: the delay between a PE dying
    /// and the runtime noticing (heartbeat timeout). Charged once per
    /// failure event before recovery starts.
    #[serde(default = "default_fail_detect_s")]
    pub fail_detect_s: f64,
    /// Reliable migration protocol tunables (retry budget, deadline,
    /// ACK size). Only consulted when a network fault spec is active;
    /// the clean path keeps the analytic `transfer_time` costing.
    #[serde(default)]
    pub migration_proto: MigrationProto,
    /// Steady-state fast-forward mode (default [`FastForward::Auto`]).
    #[serde(default)]
    pub fast_forward: FastForward,
}

fn default_fail_detect_s() -> f64 {
    0.05
}

impl RunConfig {
    /// Paper-style run: `cores` cores (4 per node), default models.
    pub fn paper(cores: usize, iterations: usize) -> Self {
        RunConfig {
            cluster: ClusterConfig::paper_testbed(cores),
            network: NetworkModel::default(),
            power: PowerModel::default(),
            lb: LbConfig::default(),
            iterations,
            initial_map: InitialMap::Block,
            seed: 1,
            cost_noise_frac: 0.0,
            pe_speeds: Vec::new(),
            checkpoints: CheckpointPolicy::default(),
            fail_detect_s: default_fail_detect_s(),
            migration_proto: MigrationProto::default(),
            fast_forward: FastForward::default(),
        }
    }

    /// Resolved per-core speeds (uniform 1.0 unless overridden), with
    /// malformed overrides reported as a typed error (the fuzzable path).
    pub fn try_resolved_speeds(&self) -> Result<Vec<f64>, String> {
        let n = self.cluster.total_cores();
        if self.pe_speeds.is_empty() {
            return Ok(vec![1.0; n]);
        }
        if self.pe_speeds.len() != n {
            return Err(format!(
                "pe_speeds length {} != core count {n}",
                self.pe_speeds.len()
            ));
        }
        if !self.pe_speeds.iter().all(|s| *s > 0.0 && s.is_finite()) {
            return Err(format!("pe_speeds must be positive: {:?}", self.pe_speeds));
        }
        Ok(self.pe_speeds.clone())
    }

    /// Resolved per-core speeds (uniform 1.0 unless overridden). Panics if
    /// an override has the wrong length or non-positive entries; callers
    /// holding untrusted config should prefer
    /// [`RunConfig::try_resolved_speeds`].
    pub fn resolved_speeds(&self) -> Vec<f64> {
        self.try_resolved_speeds().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Enable Projections-style tracing on the simulated cluster.
    pub fn with_trace(mut self) -> Self {
        self.cluster.trace = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_map_is_contiguous_and_even() {
        let m = InitialMap::Block.place(8, 4);
        assert_eq!(m, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        let m = InitialMap::Block.place(10, 4);
        let mut counts = [0; 4];
        for &p in &m {
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| (2..=3).contains(&c)), "{counts:?}");
        // Contiguity: mapping is nondecreasing.
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn round_robin_map() {
        assert_eq!(InitialMap::RoundRobin.place(5, 2), vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn fewer_chares_than_pes_is_fine() {
        let m = InitialMap::Block.place(2, 8);
        assert_eq!(m.len(), 2);
        assert!(m.iter().all(|&p| p < 8));
    }

    #[test]
    fn lb_config_resolves_strategies() {
        assert_eq!(LbConfig::default().make_strategy().name(), "CloudRefineLB");
        assert_eq!(LbConfig::nolb().make_strategy().name(), "NoLB");
    }

    #[test]
    #[should_panic(expected = "unknown LB strategy")]
    fn bad_strategy_name_panics() {
        LbConfig { strategy: "wat".into(), ..Default::default() }.make_strategy();
    }

    #[test]
    fn missing_fail_detect_s_uses_documented_default() {
        // Regression: the vendored derive used to treat
        // `#[serde(default = "path")]` as plain `default`, silently
        // deserializing an absent fail_detect_s to 0.0 instead of 0.05.
        let mut v = serde_json::to_value(&RunConfig::paper(8, 4)).unwrap();
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "fail_detect_s");
        } else {
            panic!("RunConfig should serialize to an object");
        }
        let cfg: RunConfig = serde_json::from_value(v).unwrap();
        assert_eq!(cfg.fail_detect_s, default_fail_detect_s());
        assert_eq!(cfg.fail_detect_s, 0.05);
    }

    #[test]
    fn speeds_default_uniform_and_validate() {
        let c = RunConfig::paper(8, 10);
        assert_eq!(c.resolved_speeds(), vec![1.0; 8]);
        let mut h = c.clone();
        h.pe_speeds = vec![1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5];
        assert_eq!(h.resolved_speeds()[4], 0.5);
    }

    #[test]
    #[should_panic(expected = "pe_speeds length")]
    fn ragged_speeds_rejected() {
        let mut c = RunConfig::paper(8, 10);
        c.pe_speeds = vec![1.0; 3];
        c.resolved_speeds();
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_speeds_rejected() {
        let mut c = RunConfig::paper(4, 10);
        c.pe_speeds = vec![1.0, 0.0, 1.0, 1.0];
        c.resolved_speeds();
    }

    #[test]
    fn fast_forward_parses_and_defaults_to_auto() {
        assert_eq!(FastForward::parse("on"), Ok(FastForward::On));
        assert_eq!(FastForward::parse("off"), Ok(FastForward::Off));
        assert_eq!(FastForward::parse("auto"), Ok(FastForward::Auto));
        assert!(FastForward::parse("fast").is_err());
        assert_eq!(FastForward::default(), FastForward::Auto);
        assert_eq!(RunConfig::paper(4, 10).fast_forward, FastForward::Auto);
    }

    #[test]
    fn paper_config_shape() {
        let c = RunConfig::paper(16, 100);
        assert_eq!(c.cluster.nodes, 4);
        assert_eq!(c.iterations, 100);
        assert!(!c.cluster.trace);
        assert!(c.with_trace().cluster.trace);
    }
}
