//! Randomized chaos tests of the flaky-network layer: for arbitrary
//! seeded loss/duplication/partition schedules, runs complete with every
//! chare conserved, the mapping consistent, and bit-for-bit determinism.
//!
//! Cases come from the repo's deterministic `SimRng` with a fixed seed, so
//! the corpus is reproducible without an external property-test crate.

use cloudlb_runtime::netproto::MigrationProto;
use cloudlb_runtime::program::SyntheticApp;
use cloudlb_runtime::{LbConfig, RunConfig, SimExecutor};
use cloudlb_sim::interference::BgScript;
use cloudlb_sim::{NetFaultSpec, PartitionScope, PartitionWindow, SimRng, Time};

fn ur(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    rng.range_u64(lo, hi)
}

/// Draw an arbitrary-but-valid fault spec for a 2-node cluster.
fn random_spec(rng: &mut SimRng) -> NetFaultSpec {
    let mut spec = NetFaultSpec {
        loss: rng.f64() * 0.4,
        dup: rng.f64() * 0.1,
        reorder: rng.f64() * 0.3,
        jitter: rng.f64() * 0.5,
        collapse: rng.f64() * 0.1,
        ..NetFaultSpec::none()
    };
    for _ in 0..ur(rng, 0, 3) {
        let from = rng.f64() * 0.8;
        let to = from + 0.02 + rng.f64() * 0.2;
        let scope = if ur(rng, 0, 2) == 0 {
            PartitionScope::Rack
        } else {
            PartitionScope::NodePair { a: 0, b: 1 }
        };
        spec.partitions.push(PartitionWindow { scope, from_frac: from, to_frac: to });
    }
    spec
}

/// Any seeded damage schedule leaves the run able to finish: every
/// iteration completes, no chare is lost or duplicated, and the final
/// mapping only references real cores.
#[test]
fn chaos_conserves_chares_and_completes() {
    let mut rng = SimRng::new(0xC4A0_5EED);
    for case in 0..20 {
        let chares = ur(&mut rng, 8, 48) as usize;
        let iters = ur(&mut rng, 6, 40) as usize;
        let period = ur(&mut rng, 2, 8) as usize;
        let cost = 0.0002 + rng.f64() * 0.002;
        let spec = random_spec(&mut rng);
        let seed = ur(&mut rng, 1, 1 << 20);
        let with_bg = ur(&mut rng, 0, 2) == 1;

        let app = SyntheticApp::ring(chares, cost);
        let mut cfg = RunConfig::paper(8, iters);
        cfg.lb = LbConfig { strategy: "cloudrefine".into(), period, ..Default::default() };
        cfg.seed = seed;
        // Stress the abort path on some cases: a stingy retry budget makes
        // lossy links give up quickly.
        if ur(&mut rng, 0, 2) == 1 {
            cfg.migration_proto =
                MigrationProto { max_attempts: 2, deadline_s: 0.005, ack_bytes: 64 };
        }
        let bg = if with_bg {
            BgScript::steady(0, &[0], Time::ZERO, None, 1.0)
        } else {
            BgScript::none()
        };

        let r = SimExecutor::new(&app, cfg, bg)
            .with_net_faults(spec.clone())
            .try_run()
            .unwrap_or_else(|e| panic!("case {case}: chaos run failed: {e} (spec {spec:?})"));

        assert_eq!(r.iter_times.len(), iters, "case {case}: every iteration must complete");
        assert_eq!(
            r.final_mapping.len(),
            chares,
            "case {case}: chare conservation violated (spec {spec:?})"
        );
        assert!(
            r.final_mapping.iter().all(|&p| p < 8),
            "case {case}: chare mapped off-cluster: {:?}",
            r.final_mapping
        );
        if !spec.partitions.is_empty() {
            assert!(r.net.partition_us > 0, "case {case}: partition time must be accounted");
        }
    }
}

/// The same (spec, seed) pair always produces the same run — damage
/// counters, timings, mapping, everything.
#[test]
fn chaos_runs_are_deterministic() {
    let mut rng = SimRng::new(0xDE7E_121C);
    for case in 0..6 {
        let spec = random_spec(&mut rng);
        let seed = ur(&mut rng, 1, 1 << 20);
        let run = || {
            let app = SyntheticApp::ring(24, 0.001);
            let mut cfg = RunConfig::paper(8, 20);
            cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
            cfg.seed = seed;
            let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
            SimExecutor::new(&app, cfg, bg).with_net_faults(spec.clone()).run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.app_time, b.app_time, "case {case}");
        assert_eq!(a.iter_times, b.iter_times, "case {case}");
        assert_eq!(a.final_mapping, b.final_mapping, "case {case}");
        assert_eq!(a.net, b.net, "case {case}: damage counters must be reproducible");
        assert_eq!(a.migrations, b.migrations, "case {case}");
    }
}

/// Aborted migrations re-enter planning: with a harsh lossy link and a
/// tiny retry budget, aborts happen, yet the run completes and later LB
/// steps keep rebalancing (the failed moves are either re-attempted or
/// planned around — never silently dropped from the run's books).
#[test]
fn aborts_feed_replanning_instead_of_losing_chares() {
    let app = SyntheticApp::ring(32, 0.001);
    let mut cfg = RunConfig::paper(8, 60);
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period: 5, ..Default::default() };
    cfg.migration_proto = MigrationProto { max_attempts: 2, deadline_s: 0.002, ack_bytes: 64 };
    let spec = NetFaultSpec { loss: 0.8, ..NetFaultSpec::none() };
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
    let r = SimExecutor::new(&app, cfg, bg).with_net_faults(spec).run();
    assert_eq!(r.iter_times.len(), 60);
    assert!(r.net.migration_aborts > 0, "80% loss with 2 attempts must abort: {:?}", r.net);
    assert!(r.lb_steps > 1, "later LB steps must still run");
    assert_eq!(r.final_mapping.len(), 32);
    assert!(r.final_mapping.iter().all(|&p| p < 8));
    // Despite the hostile link, some migrations still commit over the run.
    assert!(r.migrations > 0, "the balancer should still land some moves");
}
