//! Property-based tests of the thread executor: random worker counts,
//! decompositions, LB settings, interference schedules and migration modes
//! must always compute exactly what a serial execution computes.
//!
//! This is the strongest correctness statement about the migratable-object
//! machinery: whatever the balancer does — however chares bounce between
//! OS threads, as moved boxes or as PUPed bytes, under whatever timing the
//! scheduler produces — the numbers cannot change.

use cloudlb_runtime::program::SyntheticApp;
use cloudlb_runtime::thread_exec::{serial_reference, ThreadBg, ThreadExecutor, ThreadRunConfig};
use cloudlb_runtime::{InitialMap, LbConfig};
use proptest::prelude::*;

proptest! {
    // Each case spawns real threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn threads_always_match_serial_reference(
        chares in 3usize..20,
        pes in 1usize..6,
        iters in 1usize..12,
        period in 1usize..8,
        strategy_ix in 0usize..4,
        serialize in any::<bool>(),
        round_robin in any::<bool>(),
        bg in proptest::option::of((0usize..6, 0usize..12, 1usize..12, 1u32..4)),
    ) {
        let strategy = ["nolb", "cloudrefine", "greedybg", "commrefine"][strategy_ix];
        let app = SyntheticApp::ring(chares, 0.0);
        let mut cfg = ThreadRunConfig::new(pes, iters);
        cfg.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
        cfg.serialize_migration = serialize;
        cfg.initial_map = if round_robin { InitialMap::RoundRobin } else { InitialMap::Block };
        if let Some((pe, from, len, weight)) = bg {
            cfg.bg.push(ThreadBg {
                pe: pe % pes,
                from_iter: from.min(iters),
                to_iter: (from + len).min(iters),
                weight: weight as f64,
            });
        }
        let run = ThreadExecutor::run(&app, cfg);
        prop_assert_eq!(&run.checksums, &serial_reference(&app, iters));
        prop_assert_eq!(run.final_mapping.len(), chares);
        prop_assert!(run.final_mapping.iter().all(|&p| p < pes));
        if strategy == "nolb" {
            prop_assert_eq!(run.migrations, 0);
        }
        let expected_steps = if iters == 0 { 0 } else { (iters - 1) / period };
        prop_assert_eq!(run.lb_steps, expected_steps);
    }
}
