//! Randomized tests of the thread executor: random worker counts,
//! decompositions, LB settings, interference schedules and migration modes
//! must always compute exactly what a serial execution computes.
//!
//! This is the strongest correctness statement about the migratable-object
//! machinery: whatever the balancer does — however chares bounce between
//! OS threads, as moved boxes or as PUPed bytes, under whatever timing the
//! scheduler produces — the numbers cannot change.
//!
//! Cases are generated with the repo's own deterministic `SimRng` from a
//! fixed seed, so every CI run exercises the same (reproducible) corpus.

use cloudlb_runtime::program::SyntheticApp;
use cloudlb_runtime::thread_exec::{serial_reference, ThreadBg, ThreadExecutor, ThreadRunConfig};
use cloudlb_runtime::{InitialMap, LbConfig, ThreadFault};
use cloudlb_sim::SimRng;

fn ur(rng: &mut SimRng, lo: usize, hi: usize) -> usize {
    rng.range_u64(lo as u64, hi as u64) as usize
}

#[test]
fn threads_always_match_serial_reference() {
    // Each case spawns real threads; keep the count moderate.
    let mut rng = SimRng::new(0xC_10D1_B7EE);
    for case in 0..24 {
        let chares = ur(&mut rng, 3, 20);
        let pes = ur(&mut rng, 1, 6);
        let iters = ur(&mut rng, 1, 12);
        let period = ur(&mut rng, 1, 8);
        let strategy = ["nolb", "cloudrefine", "greedybg", "commrefine"][ur(&mut rng, 0, 4)];
        let serialize = rng.below(2) == 0;
        let round_robin = rng.below(2) == 0;

        let app = SyntheticApp::ring(chares, 0.0);
        let mut cfg = ThreadRunConfig::new(pes, iters);
        cfg.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
        cfg.serialize_migration = serialize;
        cfg.initial_map = if round_robin { InitialMap::RoundRobin } else { InitialMap::Block };
        if rng.below(2) == 0 {
            let from = ur(&mut rng, 0, 12).min(iters);
            let len = ur(&mut rng, 1, 12);
            cfg.bg.push(ThreadBg {
                pe: ur(&mut rng, 0, 6) % pes,
                from_iter: from,
                to_iter: (from + len).min(iters),
                weight: ur(&mut rng, 1, 4) as f64,
            });
        }
        let ctx = format!(
            "case {case}: chares={chares} pes={pes} iters={iters} period={period} \
             strategy={strategy} serialize={serialize} round_robin={round_robin}"
        );
        let run = ThreadExecutor::run(&app, cfg).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        assert_eq!(run.checksums, serial_reference(&app, iters), "{ctx}");
        assert_eq!(run.final_mapping.len(), chares, "{ctx}");
        assert!(run.final_mapping.iter().all(|&p| p < pes), "{ctx}");
        if strategy == "nolb" {
            assert_eq!(run.migrations, 0, "{ctx}");
        }
        let expected_steps = (iters - 1) / period;
        assert_eq!(run.lb_steps, expected_steps, "{ctx}");
        assert_eq!(run.restarts, 0, "{ctx}");
    }
}

#[test]
fn threads_with_random_failures_still_match_serial_reference() {
    // A worker panic at a random point must be absorbed by
    // checkpoint/rollback without changing the numbers.
    let mut rng = SimRng::new(0xFA17_0E55);
    for case in 0..8 {
        let chares = ur(&mut rng, 6, 16);
        let pes = ur(&mut rng, 2, 5);
        let iters = ur(&mut rng, 6, 14);
        let period = ur(&mut rng, 2, 5);
        let strategy = ["nolb", "cloudrefine", "greedybg"][ur(&mut rng, 0, 3)];

        let app = SyntheticApp::ring(chares, 0.0);
        let mut cfg = ThreadRunConfig::new(pes, iters);
        cfg.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
        let fault_pe = ur(&mut rng, 0, pes);
        let fault_iter = ur(&mut rng, 1, iters);
        cfg.inject.push(ThreadFault::Panic { pe: fault_pe, iter: fault_iter });
        let ctx = format!(
            "case {case}: chares={chares} pes={pes} iters={iters} period={period} \
             strategy={strategy} fault=pe{fault_pe}@{fault_iter}"
        );
        let run = ThreadExecutor::run(&app, cfg).unwrap_or_else(|e| panic!("{ctx}: {e}"));
        // The fault may land on an iteration the victim never executes
        // (e.g. it owns no chare there), so restarts is 0 or 1 — but the
        // numbers must match either way.
        assert!(run.restarts <= 1, "{ctx}: restarts={}", run.restarts);
        assert_eq!(run.checksums, serial_reference(&app, iters), "{ctx}");
        assert!(run.final_mapping.iter().all(|&p| p < pes), "{ctx}");
    }
}
