//! Failure-injection scenarios for the simulated executor.
//!
//! The unit tests in `sim_exec` cover the recovery mechanics; these
//! integration tests drive the public API through the awkward schedules a
//! cloud deployment actually produces: kills landing mid-iteration and
//! exactly on an LB boundary, failures overlapping interference, sparse
//! checkpoints forcing deep rollbacks, and bit-for-bit determinism of
//! failure runs.

use cloudlb_runtime::checkpoint::CheckpointPolicy;
use cloudlb_runtime::program::SyntheticApp;
use cloudlb_runtime::{LbConfig, RunConfig, RunResult, RuntimeError, SimExecutor};
use cloudlb_sim::failure::FailureScript;
use cloudlb_sim::interference::BgScript;
use cloudlb_sim::{ClusterConfig, Dur, Time};

fn config(nodes: usize, cores_per_node: usize, iters: usize, period: usize) -> RunConfig {
    let mut cfg = RunConfig {
        cluster: ClusterConfig { nodes, cores_per_node, trace: false },
        ..RunConfig::paper(nodes * cores_per_node, iters)
    };
    cfg.iterations = iters;
    cfg.lb = LbConfig { strategy: "cloudrefine".into(), period, ..Default::default() };
    cfg
}

fn run(app: &SyntheticApp, cfg: RunConfig, bg: BgScript, fail: FailureScript) -> RunResult {
    SimExecutor::new(app, cfg, bg).with_failures(fail).try_run().expect("recoverable run")
}

/// A core dying in the middle of an iteration (no boundary in sight) rolls
/// back to the last checkpoint and still produces a complete, correctly
/// accounted run on the surviving cores.
#[test]
fn core_dies_mid_iteration() {
    let app = SyntheticApp::ring(16, 0.001);
    let cfg = config(1, 4, 30, 5);
    // ~4 ms per iteration; 22 ms is inside iteration 6, between boundaries.
    let fail = FailureScript::kill_core(1, Time::from_us(22_000));
    let r = run(&app, cfg.clone(), BgScript::none(), fail);
    assert_eq!(r.iter_times.len(), 30);
    assert_eq!(r.failures, 1);
    assert_eq!(r.recoveries, 1);
    assert!(r.replayed_iters > 0);
    assert!(r.final_mapping.iter().all(|&p| p != 1), "dead core still hosts chares");
    let clean = SimExecutor::new(&app, cfg, BgScript::none()).run();
    assert!(r.app_time > clean.app_time, "losing a core must cost wall time");
}

/// A whole node dying at the exact instant an LB boundary completes: the
/// kill event sorts ahead of same-instant runtime events, so recovery and
/// the interrupted LB step must not trample each other.
#[test]
fn node_dies_at_lb_boundary() {
    let app = SyntheticApp::ring(24, 0.0012);
    let cfg = config(2, 4, 20, 5);
    let clean = SimExecutor::new(&app, cfg.clone(), BgScript::none()).run();
    // The first LB boundary completes once iteration 5 is done.
    let boundary: Dur = clean.iter_times.iter().take(5).fold(Dur::ZERO, |a, d| a + *d);
    let fail = FailureScript::kill_node(1, Time::ZERO + boundary);
    let r = run(&app, cfg, BgScript::none(), fail);
    assert_eq!(r.iter_times.len(), 20);
    assert_eq!(r.failures, 4, "a node kill fails all four of its cores");
    assert_eq!(r.recoveries, 1, "one rollback covers the whole node");
    assert!(r.final_mapping.iter().all(|&p| p < 4), "chares must end on the surviving node");
}

/// Failure and interference overlapping: the balancer sheds the interfered
/// core while recovery has already removed another. The run completes and
/// the balancer still avoids both the dead core and (mostly) the noisy one.
#[test]
fn failure_overlapping_interference() {
    let app = SyntheticApp::ring(16, 0.001);
    let cfg = config(1, 4, 30, 5);
    let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
    let fail = FailureScript::kill_core(3, Time::from_us(40_000));
    let r = run(&app, cfg.clone(), bg.clone(), fail);
    assert_eq!(r.iter_times.len(), 30);
    assert_eq!(r.failures, 1);
    assert_eq!(r.recoveries, 1);
    assert!(r.final_mapping.iter().all(|&p| p != 3));
    // With core 3 dead and core 0 interfered, the two quiet cores carry
    // most of the work.
    let quiet = r.final_mapping.iter().filter(|&&p| p == 1 || p == 2).count();
    assert!(quiet * 2 >= r.final_mapping.len(), "quiet cores hold {quiet}/16 chares");
    let interfered = SimExecutor::new(&app, cfg, bg).run();
    assert!(r.app_time > interfered.app_time, "failure must add cost on top of interference");
}

/// With a checkpoint period longer than the LB period, most boundaries pass
/// without a snapshot, so the same kill rolls back further and replays more
/// work than under every-boundary checkpointing.
#[test]
fn sparse_checkpoints_roll_back_further() {
    let app = SyntheticApp::ring(16, 0.001);
    let fail = FailureScript::kill_core(2, Time::from_us(50_000)); // ≈ iteration 12
    let dense_cfg = config(1, 4, 30, 5); // checkpoints at 5, 10, 15, ...
    let mut sparse_cfg = dense_cfg.clone();
    sparse_cfg.checkpoints = CheckpointPolicy::Period(15); // boundary 15 only
    let dense = run(&app, dense_cfg, BgScript::none(), fail.clone());
    let sparse = run(&app, sparse_cfg, BgScript::none(), fail);
    assert_eq!(dense.iter_times.len(), 30);
    assert_eq!(sparse.iter_times.len(), 30);
    // Dense rolls back to boundary 10; sparse has only the initial
    // snapshot and replays the run from iteration 0.
    assert!(
        sparse.replayed_iters > dense.replayed_iters,
        "sparse checkpoints must replay more ({} vs {})",
        sparse.replayed_iters,
        dense.replayed_iters
    );
    assert!(sparse.app_time > dense.app_time, "deeper rollback must cost more wall time");
}

/// Disabled checkpointing turns the same kill into a typed error, not a
/// panic.
#[test]
fn disabled_checkpoints_fail_gracefully() {
    let app = SyntheticApp::ring(16, 0.001);
    let mut cfg = config(1, 4, 30, 5);
    cfg.checkpoints = CheckpointPolicy::Disabled;
    let fail = FailureScript::kill_core(2, Time::from_us(50_000));
    let err = SimExecutor::new(&app, cfg, BgScript::none())
        .with_failures(fail)
        .try_run()
        .expect_err("unrecoverable without checkpoints");
    assert!(matches!(err, RuntimeError::Unrecoverable { .. }), "got {err}");
}

/// The whole failure pipeline is deterministic: the same app, interference
/// and failure schedule produce bit-for-bit identical results, including
/// the recovery accounting.
#[test]
fn failure_runs_are_bit_for_bit_deterministic() {
    let app = SyntheticApp::ring(24, 0.0012);
    let bg = BgScript::steady(5, &[1], Time::from_us(10_000), None, 1.0);
    let fail = FailureScript::node_outage(1, Time::from_us(30_000), Time::from_us(80_000))
        .merge(FailureScript::kill_core(2, Time::from_us(120_000)));
    let go = || run(&app, config(2, 4, 40, 5), bg.clone(), fail.clone());
    let a = go();
    let b = go();
    assert_eq!(a.app_time, b.app_time);
    assert_eq!(a.iter_times, b.iter_times);
    assert_eq!(a.final_mapping, b.final_mapping);
    assert_eq!(a.failures, b.failures);
    assert_eq!(a.recoveries, b.recoveries);
    assert_eq!(a.replayed_iters, b.replayed_iters);
    assert_eq!(a.recovery_time, b.recovery_time);
    assert_eq!(a.migrations, b.migrations);
}
