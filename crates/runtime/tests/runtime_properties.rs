//! Property-based tests of the simulated executor: for random workloads,
//! interference and LB settings, runs complete with consistent accounting
//! and are bit-for-bit deterministic.

use cloudlb_runtime::program::SyntheticApp;
use cloudlb_runtime::{LbConfig, RunConfig, SimExecutor};
use cloudlb_sim::interference::BgScript;
use cloudlb_sim::{ClusterConfig, Dur, Time};
use proptest::prelude::*;

fn config(pes: usize, iters: usize, strategy: &str, period: usize) -> RunConfig {
    let mut cfg = RunConfig {
        cluster: ClusterConfig { nodes: 1, cores_per_node: pes, trace: false },
        ..RunConfig::paper(4, iters)
    };
    cfg.iterations = iters;
    cfg.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (chares, cores, iterations, period, costs, pulse) combination
    /// completes, accounts every iteration, and keeps invariants:
    /// * per-iteration times sum to the total wall time;
    /// * the final mapping stays within the core range;
    /// * noLB never migrates; every strategy's LB step count matches the
    ///   boundary arithmetic.
    #[test]
    fn runs_complete_with_consistent_accounting(
        chares in 3usize..40,
        pes in 1usize..9,
        iters in 1usize..30,
        period in 1usize..12,
        cost_us in 50u64..2_000,
        strategy_ix in 0usize..3,
        pulse in proptest::option::of((0u64..30_000, 1_000u64..50_000)),
    ) {
        let strategy = ["nolb", "cloudrefine", "greedybg"][strategy_ix];
        let app = SyntheticApp::ring(chares, cost_us as f64 / 1e6);
        let cfg = config(pes, iters, strategy, period);
        let bg = match pulse {
            Some((start, len)) => BgScript::pulse(
                0,
                0, // core 0 always exists
                Time::from_us(start),
                Time::from_us(start + len),
                1.0,
            ),
            None => BgScript::none(),
        };
        let r = SimExecutor::new(&app, cfg, bg).run();

        prop_assert_eq!(r.iter_times.len(), iters);
        let sum: u64 = r.iter_times.iter().map(|d| d.as_us()).sum();
        prop_assert_eq!(sum, r.app_time.as_us(), "iteration times must tile the run");
        prop_assert_eq!(r.final_mapping.len(), chares);
        prop_assert!(r.final_mapping.iter().all(|&p| p < pes));
        if strategy == "nolb" {
            prop_assert_eq!(r.migrations, 0);
        }
        let expected_steps = if iters == 0 { 0 } else { (iters - 1) / period };
        prop_assert_eq!(r.lb_steps, expected_steps);
        prop_assert!(r.energy.energy_j > 0.0);
    }

    /// Bit-for-bit determinism across repeated runs.
    #[test]
    fn repeated_runs_are_identical(
        chares in 4usize..24,
        pes in 2usize..6,
        period in 2usize..8,
        bg_weight in 0.5f64..3.0,
    ) {
        let app = SyntheticApp::ring(chares, 0.0008);
        let bg = BgScript::steady(0, &[0], Time::ZERO, Some(Dur::from_ms(20)), bg_weight);
        let go = || SimExecutor::new(&app, config(pes, 15, "cloudrefine", period), bg.clone()).run();
        let a = go();
        let b = go();
        prop_assert_eq!(a.app_time, b.app_time);
        prop_assert_eq!(a.iter_times, b.iter_times);
        prop_assert_eq!(a.final_mapping, b.final_mapping);
        prop_assert_eq!(a.migrations, b.migrations);
        prop_assert_eq!(a.energy.energy_j, b.energy.energy_j);
        prop_assert_eq!(a.local_msgs, b.local_msgs);
        prop_assert_eq!(a.remote_msgs, b.remote_msgs);
    }

    /// Under steady interference, the balanced run never loses badly to
    /// noLB (it may tie when nothing is movable), and message counts are
    /// identical (LB changes placement, not topology).
    #[test]
    fn lb_never_loses_badly(
        chares_per_pe in 4usize..12,
        pes in 2usize..6,
    ) {
        let chares = chares_per_pe * pes;
        let app = SyntheticApp::ring(chares, 0.0008);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let nolb = SimExecutor::new(&app, config(pes, 24, "nolb", 6), bg.clone()).run();
        let lb = SimExecutor::new(&app, config(pes, 24, "cloudrefine", 6), bg).run();
        prop_assert!(
            lb.app_time.as_secs_f64() <= nolb.app_time.as_secs_f64() * 1.05,
            "LB {:.4}s much worse than noLB {:.4}s",
            lb.app_time.as_secs_f64(),
            nolb.app_time.as_secs_f64()
        );
        prop_assert_eq!(lb.local_msgs + lb.remote_msgs, nolb.local_msgs + nolb.remote_msgs);
    }
}
