//! Randomized tests of the simulated executor: for random workloads,
//! interference and LB settings, runs complete with consistent accounting
//! and are bit-for-bit deterministic.
//!
//! Cases come from the repo's deterministic `SimRng` with fixed seeds, so
//! the corpus is reproducible without an external property-test crate.

use cloudlb_runtime::program::SyntheticApp;
use cloudlb_runtime::{LbConfig, RunConfig, SimExecutor};
use cloudlb_sim::interference::BgScript;
use cloudlb_sim::{ClusterConfig, Dur, SimRng, Time};

fn config(pes: usize, iters: usize, strategy: &str, period: usize) -> RunConfig {
    let mut cfg = RunConfig {
        cluster: ClusterConfig { nodes: 1, cores_per_node: pes, trace: false },
        ..RunConfig::paper(4, iters)
    };
    cfg.iterations = iters;
    cfg.lb = LbConfig { strategy: strategy.into(), period, ..Default::default() };
    cfg
}

fn ur(rng: &mut SimRng, lo: usize, hi: usize) -> usize {
    rng.range_u64(lo as u64, hi as u64) as usize
}

/// Any (chares, cores, iterations, period, costs, pulse) combination
/// completes, accounts every iteration, and keeps invariants:
/// * per-iteration times sum to the total wall time;
/// * the final mapping stays within the core range;
/// * noLB never migrates; every strategy's LB step count matches the
///   boundary arithmetic.
#[test]
fn runs_complete_with_consistent_accounting() {
    let mut rng = SimRng::new(0xACC0);
    for case in 0..48 {
        let chares = ur(&mut rng, 3, 40);
        let pes = ur(&mut rng, 1, 9);
        let iters = ur(&mut rng, 1, 30);
        let period = ur(&mut rng, 1, 12);
        let cost_us = rng.range_u64(50, 2_000);
        let strategy = ["nolb", "cloudrefine", "greedybg"][ur(&mut rng, 0, 3)];
        let pulse = (rng.below(2) == 0)
            .then(|| (rng.range_u64(0, 30_000), rng.range_u64(1_000, 50_000)));

        let app = SyntheticApp::ring(chares, cost_us as f64 / 1e6);
        let cfg = config(pes, iters, strategy, period);
        let bg = match pulse {
            Some((start, len)) => BgScript::pulse(
                0,
                0, // core 0 always exists
                Time::from_us(start),
                Time::from_us(start + len),
                1.0,
            ),
            None => BgScript::none(),
        };
        let r = SimExecutor::new(&app, cfg, bg).run();

        let ctx = format!(
            "case {case}: chares={chares} pes={pes} iters={iters} period={period} \
             cost_us={cost_us} strategy={strategy} pulse={pulse:?}"
        );
        assert_eq!(r.iter_times.len(), iters, "{ctx}");
        let sum: u64 = r.iter_times.iter().map(|d| d.as_us()).sum();
        assert_eq!(sum, r.app_time.as_us(), "{ctx}: iteration times must tile the run");
        assert_eq!(r.final_mapping.len(), chares, "{ctx}");
        assert!(r.final_mapping.iter().all(|&p| p < pes), "{ctx}");
        if strategy == "nolb" {
            assert_eq!(r.migrations, 0, "{ctx}");
        }
        let expected_steps = (iters - 1) / period;
        assert_eq!(r.lb_steps, expected_steps, "{ctx}");
        assert!(r.energy.energy_j > 0.0, "{ctx}");
    }
}

/// Bit-for-bit determinism across repeated runs.
#[test]
fn repeated_runs_are_identical() {
    let mut rng = SimRng::new(0xDE7E);
    for case in 0..12 {
        let chares = ur(&mut rng, 4, 24);
        let pes = ur(&mut rng, 2, 6);
        let period = ur(&mut rng, 2, 8);
        let bg_weight = rng.range_f64(0.5, 3.0);

        let app = SyntheticApp::ring(chares, 0.0008);
        let bg = BgScript::steady(0, &[0], Time::ZERO, Some(Dur::from_ms(20)), bg_weight);
        let go =
            || SimExecutor::new(&app, config(pes, 15, "cloudrefine", period), bg.clone()).run();
        let a = go();
        let b = go();
        let ctx = format!("case {case}: chares={chares} pes={pes} period={period}");
        assert_eq!(a.app_time, b.app_time, "{ctx}");
        assert_eq!(a.iter_times, b.iter_times, "{ctx}");
        assert_eq!(a.final_mapping, b.final_mapping, "{ctx}");
        assert_eq!(a.migrations, b.migrations, "{ctx}");
        assert_eq!(a.energy.energy_j, b.energy.energy_j, "{ctx}");
        assert_eq!(a.local_msgs, b.local_msgs, "{ctx}");
        assert_eq!(a.remote_msgs, b.remote_msgs, "{ctx}");
    }
}

/// Under steady interference, the balanced run never loses badly to
/// noLB (it may tie when nothing is movable), and message counts are
/// identical (LB changes placement, not topology).
#[test]
fn lb_never_loses_badly() {
    let mut rng = SimRng::new(0x1B);
    for case in 0..12 {
        let chares_per_pe = ur(&mut rng, 4, 12);
        let pes = ur(&mut rng, 2, 6);
        let chares = chares_per_pe * pes;
        let app = SyntheticApp::ring(chares, 0.0008);
        let bg = BgScript::steady(0, &[0], Time::ZERO, None, 1.0);
        let nolb = SimExecutor::new(&app, config(pes, 24, "nolb", 6), bg.clone()).run();
        let lb = SimExecutor::new(&app, config(pes, 24, "cloudrefine", 6), bg).run();
        let ctx = format!("case {case}: chares_per_pe={chares_per_pe} pes={pes}");
        assert!(
            lb.app_time.as_secs_f64() <= nolb.app_time.as_secs_f64() * 1.05,
            "{ctx}: LB {:.4}s much worse than noLB {:.4}s",
            lb.app_time.as_secs_f64(),
            nolb.app_time.as_secs_f64()
        );
        assert_eq!(lb.local_msgs + lb.remote_msgs, nolb.local_msgs + nolb.remote_msgs, "{ctx}");
    }
}
