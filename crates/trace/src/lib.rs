#![warn(missing_docs)]
//! Projections-style tracing for `cloudlb`.
//!
//! The paper uses the Charm++ *Projections* tool to visualize per-core
//! timelines (its Figures 1 and 3). This crate is the equivalent substrate:
//! executors record typed activity intervals per processing element (PE),
//! and the renderers turn those logs into ASCII timelines (for terminals and
//! test assertions) or SVG (for reports).
//!
//! Time is carried as plain `u64` microseconds so that both the virtual-time
//! simulator and the real-time thread executor can record into the same log
//! without depending on each other's clock types.
//!
//! # Example
//!
//! ```
//! use cloudlb_trace::{Activity, TraceLog, timeline::TimelineOptions};
//!
//! let mut log = TraceLog::new(2);
//! log.record(0, 0, 1_000, Activity::Task { chare: 7 });
//! log.record(1, 0, 2_000, Activity::Background { job: 0 });
//! let art = cloudlb_trace::timeline::render_ascii(&log, &TimelineOptions::default());
//! assert!(art.contains("pe   0"));
//! ```

pub mod event;
pub mod json;
pub mod log;
pub mod profile;
pub mod stats;
pub mod svg;
pub mod timeline;

pub use event::{Activity, Interval};
pub use log::TraceLog;
pub use stats::{LogSummary, PeSummary};
