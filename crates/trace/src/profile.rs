//! Usage-profile rendering: Projections' "usage profile" view — one bar
//! per PE showing how its time divided between application work,
//! background interference, load balancing and idleness.

use crate::log::TraceLog;
use crate::stats::{summarize, LogSummary};

/// Options for the profile renderer.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Bar width in character cells.
    pub width: usize,
    /// Window start (µs); `None` = log start.
    pub start: Option<u64>,
    /// Window end (µs); `None` = log end.
    pub end: Option<u64>,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions { width: 60, start: None, end: None }
    }
}

/// Render per-PE usage bars: `#` application task time, `b` background,
/// `L` load balancing (incl. migration), `.` idle/overhead. A percentage
/// column gives the application share.
pub fn render_profile(log: &TraceLog, opts: &ProfileOptions) -> String {
    let lo = opts.start.unwrap_or_else(|| log.start_time());
    let hi = opts.end.unwrap_or_else(|| log.end_time()).max(lo + 1);
    let summary = summarize(log, lo, hi);
    render_summary(&summary, opts.width)
}

/// Render a precomputed [`LogSummary`] as usage bars.
pub fn render_summary(summary: &LogSummary, width: usize) -> String {
    let width = width.max(10);
    let mut out = String::new();
    out.push_str(&format!(
        "usage profile over [{} us, {} us):\n",
        summary.start, summary.end
    ));
    for (pe, s) in summary.pes.iter().enumerate() {
        let w = s.window_us.max(1) as f64;
        let app = s.task_us as f64 / w;
        let bg = s.background_us as f64 / w;
        let lb = (s.lb_us + s.migration_us) as f64 / w;
        let cells = |frac: f64| ((frac * width as f64).round() as usize).min(width);
        let (na, nb, nl) = (cells(app), cells(bg), cells(lb));
        let nidle = width.saturating_sub(na + nb + nl);
        out.push_str(&format!("pe {pe:>3} |"));
        out.extend(std::iter::repeat_n('#', na));
        out.extend(std::iter::repeat_n('b', nb));
        out.extend(std::iter::repeat_n('L', nl));
        out.extend(std::iter::repeat_n('.', nidle));
        out.push_str(&format!("| {:5.1}% app, {:5.1}% bg\n", app * 100.0, bg * 100.0));
    }
    out.push_str(&format!(
        "mean utilization: {:.1}%\n",
        summary.mean_utilization() * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Activity;

    fn log() -> TraceLog {
        let mut log = TraceLog::new(2);
        log.record(0, 0, 600, Activity::Task { chare: 0 });
        log.record(0, 600, 700, Activity::LoadBalance);
        log.record(1, 0, 500, Activity::Background { job: 0 });
        log
    }

    #[test]
    fn renders_one_bar_per_pe_with_shares() {
        let art = render_profile(&log(), &ProfileOptions { width: 10, ..Default::default() });
        let rows: Vec<&str> = art.lines().filter(|l| l.starts_with("pe ")).collect();
        assert_eq!(rows.len(), 2);
        let bar = |row: &str| row.split('|').nth(1).expect("bar segment").to_string();
        // PE 0: 600/700 task ≈ 9 cells, 100/700 LB ≈ 1 cell.
        assert_eq!(bar(rows[0]).matches('#').count(), 9);
        assert_eq!(bar(rows[0]).matches('L').count(), 1);
        assert!(rows[0].contains("85.7% app"));
        // PE 1: 500/700 background ≈ 7 cells, rest idle.
        assert_eq!(bar(rows[1]).matches('b').count(), 7);
        assert_eq!(bar(rows[1]).matches('.').count(), 3);
    }

    #[test]
    fn reports_mean_utilization() {
        let art = render_profile(&log(), &ProfileOptions::default());
        // PE0 fully busy, PE1 busy 5/7: mean ≈ 85.7 %.
        assert!(art.contains("mean utilization: 85.7%"), "{art}");
    }

    #[test]
    fn empty_log_is_safe() {
        let log = TraceLog::new(1);
        let art = render_profile(&log, &ProfileOptions::default());
        assert!(art.contains("pe   0"));
    }

    #[test]
    fn window_restriction_changes_shares() {
        let art = render_profile(
            &log(),
            &ProfileOptions { width: 10, start: Some(600), end: Some(700) },
        );
        let rows: Vec<&str> = art.lines().filter(|l| l.starts_with("pe ")).collect();
        let bar = rows[0].split('|').nth(1).expect("bar segment");
        assert_eq!(bar.matches('L').count(), 10); // pure LB window
    }
}
