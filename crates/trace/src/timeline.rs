//! ASCII timeline rendering, in the spirit of the Projections timelines the
//! paper uses for its Figures 1 and 3.
//!
//! Each PE becomes one row of fixed-width characters; every character cell
//! covers `window / width` microseconds and shows the glyph of the activity
//! that dominated that cell. Idle shows as `.`, background interference as
//! `b`, tasks as per-chare glyphs.

use crate::event::Activity;
use crate::log::TraceLog;

/// Options controlling ASCII rendering.
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Output width in character cells.
    pub width: usize,
    /// Window start (µs); `None` = start of the log.
    pub start: Option<u64>,
    /// Window end (µs); `None` = end of the log.
    pub end: Option<u64>,
    /// Render the marker caption lines below the timeline.
    pub show_markers: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions { width: 80, start: None, end: None, show_markers: true }
    }
}

/// Render `log` as a multi-line ASCII timeline.
pub fn render_ascii(log: &TraceLog, opts: &TimelineOptions) -> String {
    let lo = opts.start.unwrap_or_else(|| log.start_time());
    let hi = opts.end.unwrap_or_else(|| log.end_time()).max(lo + 1);
    let width = opts.width.max(1);
    let cell = ((hi - lo) as f64 / width as f64).max(1e-9);

    let mut out = String::new();
    out.push_str(&format!("time window: [{lo} us, {hi} us), cell = {cell:.1} us\n"));
    for pe in 0..log.num_pes() {
        let mut row = vec!['.'; width];
        // For each cell pick the activity with the largest overlap.
        let mut occupancy = vec![0u64; width];
        for iv in log.intervals(pe) {
            if iv.end <= lo || iv.start >= hi {
                continue;
            }
            let first = (((iv.start.max(lo) - lo) as f64) / cell) as usize;
            let last = ((((iv.end.min(hi) - lo) as f64) / cell).ceil() as usize).min(width);
            for (c, row_c) in row.iter_mut().enumerate().take(last).skip(first) {
                let cl = lo + (c as f64 * cell) as u64;
                let ch = lo + ((c + 1) as f64 * cell) as u64;
                let ov = iv.overlap(cl, ch.max(cl + 1));
                if ov > occupancy[c] {
                    occupancy[c] = ov;
                    *row_c = iv.activity.glyph();
                }
            }
        }
        out.push_str(&format!("pe {pe:>3} |"));
        out.extend(row);
        out.push_str("|\n");
    }
    if opts.show_markers {
        for (t, label) in log.markers() {
            if *t >= lo && *t < hi {
                let col = (((*t - lo) as f64) / cell) as usize;
                out.push_str(&format!("{:>width$}^ {label} (t={t} us)\n", "", width = col + 8));
            }
        }
    }
    out.push_str(&legend());
    out
}

/// Legend describing the glyphs.
pub fn legend() -> String {
    let entries = [
        (Activity::Task { chare: 0 }, "task (glyph varies by chare)"),
        (Activity::Background { job: 0 }, "background/interfering job"),
        (Activity::Idle, "idle"),
        (Activity::LoadBalance, "load balancing"),
        (Activity::Migration { chare: 0 }, "migration"),
        (Activity::Overhead, "runtime overhead"),
        (Activity::FastForward, "fast-forwarded (coalesced) window"),
    ];
    let mut s = String::from("legend: ");
    for (i, (a, desc)) in entries.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("{}={desc}", a.glyph()));
    }
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> TraceLog {
        let mut log = TraceLog::new(2);
        log.record(0, 0, 500, Activity::Task { chare: 0 });
        log.record(0, 500, 1000, Activity::Idle);
        log.record(1, 0, 1000, Activity::Background { job: 0 });
        log.marker(500, "bg ends");
        log
    }

    #[test]
    fn renders_one_row_per_pe() {
        let art = render_ascii(&log(), &TimelineOptions::default());
        assert!(art.contains("pe   0 |"));
        assert!(art.contains("pe   1 |"));
    }

    #[test]
    fn glyphs_reflect_activities() {
        let opts = TimelineOptions { width: 10, ..Default::default() };
        let art = render_ascii(&log(), &opts);
        let rows: Vec<&str> = art.lines().filter(|l| l.starts_with("pe ")).collect();
        // PE 0: first half tasks, second half idle.
        assert!(rows[0].contains('#'));
        assert!(rows[0].contains('.'));
        // PE 1: all background.
        assert_eq!(rows[1].matches('b').count(), 10);
    }

    #[test]
    fn markers_rendered_when_enabled() {
        let art = render_ascii(&log(), &TimelineOptions::default());
        assert!(art.contains("bg ends"));
        let art2 = render_ascii(
            &log(),
            &TimelineOptions { show_markers: false, ..Default::default() },
        );
        assert!(!art2.contains("bg ends"));
    }

    #[test]
    fn window_restriction() {
        let opts = TimelineOptions { width: 10, start: Some(500), end: Some(1000), ..Default::default() };
        let art = render_ascii(&log(), &opts);
        let rows: Vec<&str> = art.lines().filter(|l| l.starts_with("pe ")).collect();
        assert_eq!(rows[0].matches('.').count(), 10); // pe0 idle in window
    }

    #[test]
    fn empty_log_renders() {
        let log = TraceLog::new(1);
        let art = render_ascii(&log, &TimelineOptions::default());
        assert!(art.contains("pe   0"));
    }
}
