//! Trace event and interval types.

use serde::{Deserialize, Serialize};

/// What a PE was doing during an [`Interval`].
///
/// The variants mirror the activity classes that the Charm++ Projections
/// timeline distinguishes, plus a `Background` class for co-located
/// interfering work that the paper's scheme must detect indirectly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activity {
    /// Executing an application task (an entry method of a chare).
    Task {
        /// Global chare identifier whose entry method ran.
        chare: u64,
    },
    /// CPU consumed by an interfering (background) job co-located on the core.
    Background {
        /// Background job identifier.
        job: u32,
    },
    /// The core had no runnable work at all.
    Idle,
    /// Running the load-balancing step (measurement + strategy + commit).
    LoadBalance,
    /// Packing/unpacking/transferring a migrating chare.
    Migration {
        /// The chare being moved.
        chare: u64,
    },
    /// Runtime bookkeeping that is neither a task nor LB (scheduling,
    /// message handling, reductions).
    Overhead,
    /// A steady-state LB window coalesced by the fast-forward engine: the
    /// PE ran its usual task/idle pattern, but the engine macro-stepped the
    /// window analytically instead of simulating (and tracing) it event by
    /// event, so the per-task breakdown is not available.
    FastForward,
}

impl Activity {
    /// One-character glyph used by the ASCII timeline renderer.
    pub fn glyph(&self) -> char {
        match self {
            Activity::Task { chare } => {
                // Distinguish chares cyclically like Projections' colors.
                const GLYPHS: [char; 8] = ['#', '@', '%', '&', '=', '+', '*', 'o'];
                GLYPHS[(chare % GLYPHS.len() as u64) as usize]
            }
            Activity::Background { .. } => 'b',
            Activity::Idle => '.',
            Activity::LoadBalance => 'L',
            Activity::Migration { .. } => 'M',
            Activity::Overhead => '~',
            Activity::FastForward => 'F',
        }
    }

    /// `true` for activities that consume CPU cycles (everything but idle).
    pub fn is_busy(&self) -> bool {
        !matches!(self, Activity::Idle)
    }

    /// `true` if this activity belongs to the application under test (as
    /// opposed to background interference or idleness).
    pub fn is_application(&self) -> bool {
        matches!(
            self,
            Activity::Task { .. }
                | Activity::LoadBalance
                | Activity::Migration { .. }
                | Activity::Overhead
                | Activity::FastForward
        )
    }

    /// Fill color used by the SVG renderer.
    pub fn color(&self) -> String {
        match self {
            Activity::Task { chare } => {
                // Deterministic pastel palette keyed by chare id.
                const PALETTE: [&str; 8] = [
                    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#b279a2",
                    "#ff9da6", "#9d755d",
                ];
                PALETTE[(chare % PALETTE.len() as u64) as usize].to_string()
            }
            Activity::Background { .. } => "#bab0ac".to_string(),
            Activity::Idle => "#f5f5f5".to_string(),
            Activity::LoadBalance => "#222222".to_string(),
            Activity::Migration { .. } => "#eeca3b".to_string(),
            Activity::Overhead => "#d8d8d8".to_string(),
            Activity::FastForward => "#6a51a3".to_string(),
        }
    }
}

/// A half-open time interval `[start, end)` in microseconds during which a PE
/// performed a single [`Activity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Start time in microseconds.
    pub start: u64,
    /// End time in microseconds (exclusive); `end >= start`.
    pub end: u64,
    /// What was running.
    pub activity: Activity,
}

impl Interval {
    /// Construct an interval; panics (debug) if `end < start`.
    pub fn new(start: u64, end: u64, activity: Activity) -> Self {
        debug_assert!(end >= start, "interval end {end} before start {start}");
        Interval { start, end, activity }
    }

    /// Interval length in microseconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }

    /// Length of the overlap between this interval and `[lo, hi)`.
    pub fn overlap(&self, lo: u64, hi: u64) -> u64 {
        let s = self.start.max(lo);
        let e = self.end.min(hi);
        e.saturating_sub(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_stable_per_chare() {
        let a = Activity::Task { chare: 3 };
        let b = Activity::Task { chare: 3 };
        let c = Activity::Task { chare: 4 };
        assert_eq!(a.glyph(), b.glyph());
        assert_ne!(a.glyph(), c.glyph());
    }

    #[test]
    fn busy_classification() {
        assert!(Activity::Task { chare: 0 }.is_busy());
        assert!(Activity::Background { job: 0 }.is_busy());
        assert!(!Activity::Idle.is_busy());
        assert!(Activity::LoadBalance.is_busy());
    }

    #[test]
    fn application_classification_excludes_background() {
        assert!(Activity::Task { chare: 0 }.is_application());
        assert!(!Activity::Background { job: 1 }.is_application());
        assert!(!Activity::Idle.is_application());
    }

    #[test]
    fn interval_duration_and_overlap() {
        let iv = Interval::new(100, 300, Activity::Idle);
        assert_eq!(iv.duration(), 200);
        assert_eq!(iv.overlap(0, 1000), 200);
        assert_eq!(iv.overlap(150, 250), 100);
        assert_eq!(iv.overlap(300, 400), 0);
        assert_eq!(iv.overlap(0, 100), 0);
    }
}
