//! JSON export of trace logs, for offline analysis with external tools
//! (the moral equivalent of Projections' log files).

use crate::log::TraceLog;

/// Serialize the log to a pretty-printed JSON string.
pub fn to_json(log: &TraceLog) -> String {
    serde_json::to_string_pretty(log).expect("TraceLog serialization cannot fail")
}

/// Parse a log previously produced by [`to_json`].
pub fn from_json(s: &str) -> Result<TraceLog, serde_json::Error> {
    serde_json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Activity;

    #[test]
    fn roundtrip() {
        let mut log = TraceLog::new(3);
        log.record(0, 0, 10, Activity::Task { chare: 42 });
        log.record(2, 5, 9, Activity::Migration { chare: 42 });
        log.marker(7, "m");
        let json = to_json(&log);
        let back = from_json(&json).unwrap();
        assert_eq!(back.num_pes(), 3);
        assert_eq!(back.intervals(0), log.intervals(0));
        assert_eq!(back.intervals(2), log.intervals(2));
        assert_eq!(back.markers(), log.markers());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_json("not json").is_err());
    }
}
