//! Per-PE interval logs.

use crate::event::{Activity, Interval};
use serde::{Deserialize, Serialize};

/// A trace of one run: for every PE, the ordered list of activity intervals.
///
/// Executors append intervals in nondecreasing start order per PE. Gaps
/// between recorded intervals are interpreted as [`Activity::Idle`] by the
/// renderers and statistics, so executors may record only busy time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceLog {
    /// `pes[p]` holds the intervals recorded on PE `p`.
    pes: Vec<Vec<Interval>>,
    /// Optional labelled time markers (e.g. "LB step 3", "BG job arrives").
    markers: Vec<(u64, String)>,
}

impl TraceLog {
    /// Create an empty log for `num_pes` processing elements.
    pub fn new(num_pes: usize) -> Self {
        TraceLog { pes: vec![Vec::new(); num_pes], markers: Vec::new() }
    }

    /// Number of PEs in the log.
    pub fn num_pes(&self) -> usize {
        self.pes.len()
    }

    /// Record that PE `pe` performed `activity` during `[start, end)`.
    ///
    /// Zero-length intervals are dropped. Out-of-order appends are accepted
    /// but renderers assume per-PE ordering, so executors should not rely on
    /// it; `sort()` restores the invariant.
    pub fn record(&mut self, pe: usize, start: u64, end: u64, activity: Activity) {
        if end <= start {
            return;
        }
        self.pes[pe].push(Interval::new(start, end, activity));
    }

    /// Add a labelled marker at time `t` (rendered as a caption line).
    pub fn marker(&mut self, t: u64, label: impl Into<String>) {
        self.markers.push((t, label.into()));
    }

    /// All markers, in insertion order.
    pub fn markers(&self) -> &[(u64, String)] {
        &self.markers
    }

    /// Intervals recorded on PE `pe`.
    pub fn intervals(&self, pe: usize) -> &[Interval] {
        &self.pes[pe]
    }

    /// Restore per-PE start-time ordering after out-of-order appends.
    pub fn sort(&mut self) {
        for pe in &mut self.pes {
            pe.sort_by_key(|iv| (iv.start, iv.end));
        }
    }

    /// Earliest recorded start time, or 0 for an empty log.
    pub fn start_time(&self) -> u64 {
        self.pes
            .iter()
            .flat_map(|v| v.iter().map(|iv| iv.start))
            .min()
            .unwrap_or(0)
    }

    /// Latest recorded end time, or 0 for an empty log.
    pub fn end_time(&self) -> u64 {
        self.pes
            .iter()
            .flat_map(|v| v.iter().map(|iv| iv.end))
            .max()
            .unwrap_or(0)
    }

    /// Merge another log (same PE count) into this one. Used by the thread
    /// executor where each worker records locally and logs are joined at the
    /// end of the run.
    pub fn merge(&mut self, other: TraceLog) {
        assert_eq!(
            self.pes.len(),
            other.pes.len(),
            "cannot merge logs with different PE counts"
        );
        for (dst, src) in self.pes.iter_mut().zip(other.pes) {
            dst.extend(src);
        }
        self.markers.extend(other.markers);
        self.sort();
    }

    /// Total busy time (any non-idle activity) on PE `pe` within `[lo, hi)`.
    pub fn busy_in(&self, pe: usize, lo: u64, hi: u64) -> u64 {
        self.pes[pe]
            .iter()
            .filter(|iv| iv.activity.is_busy())
            .map(|iv| iv.overlap(lo, hi))
            .sum()
    }

    /// Total time attributed to `pred`-matching activities on `pe` in `[lo, hi)`.
    pub fn time_where(&self, pe: usize, lo: u64, hi: u64, pred: impl Fn(&Activity) -> bool) -> u64 {
        self.pes[pe]
            .iter()
            .filter(|iv| pred(&iv.activity))
            .map(|iv| iv.overlap(lo, hi))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLog {
        let mut log = TraceLog::new(2);
        log.record(0, 0, 100, Activity::Task { chare: 1 });
        log.record(0, 100, 150, Activity::Overhead);
        log.record(1, 0, 60, Activity::Background { job: 0 });
        log.record(1, 80, 120, Activity::Task { chare: 2 });
        log
    }

    #[test]
    fn records_and_reads_back() {
        let log = sample();
        assert_eq!(log.num_pes(), 2);
        assert_eq!(log.intervals(0).len(), 2);
        assert_eq!(log.intervals(1).len(), 2);
        assert_eq!(log.start_time(), 0);
        assert_eq!(log.end_time(), 150);
    }

    #[test]
    fn zero_length_intervals_are_dropped() {
        let mut log = TraceLog::new(1);
        log.record(0, 50, 50, Activity::Idle);
        assert!(log.intervals(0).is_empty());
    }

    #[test]
    fn busy_in_window() {
        let log = sample();
        assert_eq!(log.busy_in(0, 0, 150), 150);
        assert_eq!(log.busy_in(1, 0, 150), 100); // 60 bg + 40 task
        assert_eq!(log.busy_in(1, 0, 100), 80); // 60 bg + 20 task
    }

    #[test]
    fn time_where_filters_by_activity() {
        let log = sample();
        let bg = log.time_where(1, 0, 200, |a| matches!(a, Activity::Background { .. }));
        assert_eq!(bg, 60);
        let tasks = log.time_where(1, 0, 200, |a| matches!(a, Activity::Task { .. }));
        assert_eq!(tasks, 40);
    }

    #[test]
    fn merge_combines_and_sorts() {
        let mut a = TraceLog::new(1);
        a.record(0, 100, 200, Activity::Idle);
        let mut b = TraceLog::new(1);
        b.record(0, 0, 50, Activity::Task { chare: 0 });
        a.merge(b);
        assert_eq!(a.intervals(0)[0].start, 0);
        assert_eq!(a.intervals(0)[1].start, 100);
    }

    #[test]
    #[should_panic(expected = "different PE counts")]
    fn merge_rejects_mismatched_pe_counts() {
        let mut a = TraceLog::new(1);
        a.merge(TraceLog::new(2));
    }
}
