//! Summary statistics over trace logs: utilization, idle fraction,
//! per-activity breakdowns. These back the quantitative assertions in the
//! figure harnesses (e.g. "core 4 shows long task bars under interference").

use crate::event::Activity;
use crate::log::TraceLog;
use serde::{Deserialize, Serialize};

/// Per-PE time breakdown over a window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PeSummary {
    /// Time spent executing application tasks (µs).
    pub task_us: u64,
    /// Time consumed by background/interfering jobs (µs).
    pub background_us: u64,
    /// Time in load balancing (µs).
    pub lb_us: u64,
    /// Time migrating objects (µs).
    pub migration_us: u64,
    /// Runtime overhead (µs).
    pub overhead_us: u64,
    /// Time inside fast-forwarded (coalesced) LB windows (µs). The PE ran
    /// its usual task/idle mix there, but the per-activity breakdown was
    /// skipped along with the events, so it is reported as its own bucket.
    pub fast_forward_us: u64,
    /// Explicitly recorded or implied idle time (µs).
    pub idle_us: u64,
    /// Window length (µs).
    pub window_us: u64,
}

impl PeSummary {
    /// Fraction of the window spent busy (anything but idle), in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        1.0 - self.idle_us as f64 / self.window_us as f64
    }

    /// Fraction of the window spent on the application under test.
    pub fn app_fraction(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        (self.task_us + self.lb_us + self.migration_us + self.overhead_us
            + self.fast_forward_us) as f64
            / self.window_us as f64
    }
}

/// Whole-log summary: one [`PeSummary`] per PE over `[start, end)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LogSummary {
    /// Window start (µs).
    pub start: u64,
    /// Window end (µs).
    pub end: u64,
    /// Per-PE breakdowns.
    pub pes: Vec<PeSummary>,
}

impl LogSummary {
    /// Mean utilization across PEs.
    pub fn mean_utilization(&self) -> f64 {
        if self.pes.is_empty() {
            return 0.0;
        }
        self.pes.iter().map(|p| p.utilization()).sum::<f64>() / self.pes.len() as f64
    }

    /// Max over PEs of total application time (µs) — the makespan driver for
    /// a tightly coupled iteration.
    pub fn max_app_us(&self) -> u64 {
        self.pes
            .iter()
            .map(|p| p.task_us + p.lb_us + p.migration_us + p.overhead_us + p.fast_forward_us)
            .max()
            .unwrap_or(0)
    }
}

/// Summarize `log` over the window `[lo, hi)`. Unrecorded time inside the
/// window counts as idle.
pub fn summarize(log: &TraceLog, lo: u64, hi: u64) -> LogSummary {
    assert!(hi >= lo, "window end before start");
    let window = hi - lo;
    let mut pes = Vec::with_capacity(log.num_pes());
    for pe in 0..log.num_pes() {
        let mut s = PeSummary { window_us: window, ..Default::default() };
        for iv in log.intervals(pe) {
            let ov = iv.overlap(lo, hi);
            if ov == 0 {
                continue;
            }
            match iv.activity {
                Activity::Task { .. } => s.task_us += ov,
                Activity::Background { .. } => s.background_us += ov,
                Activity::LoadBalance => s.lb_us += ov,
                Activity::Migration { .. } => s.migration_us += ov,
                Activity::Overhead => s.overhead_us += ov,
                Activity::FastForward => s.fast_forward_us += ov,
                Activity::Idle => {} // folded into the implicit idle below
            }
        }
        let busy = s.task_us
            + s.background_us
            + s.lb_us
            + s.migration_us
            + s.overhead_us
            + s.fast_forward_us;
        s.idle_us = window.saturating_sub(busy);
        pes.push(s);
    }
    LogSummary { start: lo, end: hi, pes }
}

/// Summarize the full extent of the log.
pub fn summarize_all(log: &TraceLog) -> LogSummary {
    summarize(log, log.start_time(), log.end_time())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> TraceLog {
        let mut log = TraceLog::new(2);
        log.record(0, 0, 400, Activity::Task { chare: 0 });
        log.record(0, 400, 500, Activity::LoadBalance);
        log.record(1, 0, 100, Activity::Task { chare: 1 });
        log.record(1, 100, 300, Activity::Background { job: 0 });
        log
    }

    #[test]
    fn summarize_accounts_every_microsecond() {
        let s = summarize(&log(), 0, 500);
        for pe in &s.pes {
            let total = pe.task_us
                + pe.background_us
                + pe.lb_us
                + pe.migration_us
                + pe.overhead_us
                + pe.idle_us;
            assert_eq!(total, 500);
        }
        assert_eq!(s.pes[0].task_us, 400);
        assert_eq!(s.pes[0].lb_us, 100);
        assert_eq!(s.pes[0].idle_us, 0);
        assert_eq!(s.pes[1].background_us, 200);
        assert_eq!(s.pes[1].idle_us, 200);
    }

    #[test]
    fn utilization_and_app_fraction() {
        let s = summarize(&log(), 0, 500);
        assert!((s.pes[0].utilization() - 1.0).abs() < 1e-9);
        assert!((s.pes[1].utilization() - 0.6).abs() < 1e-9);
        assert!((s.pes[1].app_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn window_clipping() {
        let s = summarize(&log(), 50, 150);
        assert_eq!(s.pes[0].task_us, 100);
        assert_eq!(s.pes[1].task_us, 50);
        assert_eq!(s.pes[1].background_us, 50);
    }

    #[test]
    fn mean_utilization_and_max_app() {
        let s = summarize(&log(), 0, 500);
        assert!((s.mean_utilization() - 0.8).abs() < 1e-9);
        assert_eq!(s.max_app_us(), 500);
    }

    #[test]
    fn empty_window_is_safe() {
        let s = summarize(&log(), 100, 100);
        assert_eq!(s.pes[0].utilization(), 0.0);
        assert_eq!(s.pes[0].app_fraction(), 0.0);
    }
}
