//! SVG timeline rendering — a closer visual analogue of the Projections
//! screenshots in the paper's Figures 1 and 3 (colored bars per chare, grey
//! for interference, white for idle).

use crate::log::TraceLog;

/// Options for SVG rendering.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Total drawing width in pixels.
    pub width_px: u32,
    /// Height of each PE row in pixels.
    pub row_height_px: u32,
    /// Window start (µs); `None` = log start.
    pub start: Option<u64>,
    /// Window end (µs); `None` = log end.
    pub end: Option<u64>,
    /// Figure title.
    pub title: String,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width_px: 900,
            row_height_px: 26,
            start: None,
            end: None,
            title: String::new(),
        }
    }
}

const LEFT_MARGIN: u32 = 60;
const TOP_MARGIN: u32 = 30;

/// Render the log as an SVG document string.
pub fn render_svg(log: &TraceLog, opts: &SvgOptions) -> String {
    let lo = opts.start.unwrap_or_else(|| log.start_time());
    let hi = opts.end.unwrap_or_else(|| log.end_time()).max(lo + 1);
    let span = (hi - lo) as f64;
    let plot_w = opts.width_px.saturating_sub(LEFT_MARGIN + 10).max(10) as f64;
    let rows = log.num_pes() as u32;
    let height = TOP_MARGIN + rows * (opts.row_height_px + 4) + 30;

    let mut s = String::with_capacity(4096);
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
         font-family=\"sans-serif\" font-size=\"11\">\n",
        opts.width_px, height
    ));
    if !opts.title.is_empty() {
        s.push_str(&format!(
            "<text x=\"{}\" y=\"18\" font-size=\"14\">{}</text>\n",
            LEFT_MARGIN,
            xml_escape(&opts.title)
        ));
    }
    for pe in 0..log.num_pes() {
        let y = TOP_MARGIN + pe as u32 * (opts.row_height_px + 4);
        s.push_str(&format!(
            "<text x=\"4\" y=\"{}\">pe {}</text>\n",
            y + opts.row_height_px / 2 + 4,
            pe
        ));
        // Row background (idle).
        s.push_str(&format!(
            "<rect x=\"{LEFT_MARGIN}\" y=\"{y}\" width=\"{plot_w:.1}\" height=\"{}\" \
             fill=\"#f5f5f5\" stroke=\"#cccccc\"/>\n",
            opts.row_height_px
        ));
        for iv in log.intervals(pe) {
            if iv.end <= lo || iv.start >= hi {
                continue;
            }
            let x0 = LEFT_MARGIN as f64 + (iv.start.max(lo) - lo) as f64 / span * plot_w;
            let x1 = LEFT_MARGIN as f64 + (iv.end.min(hi) - lo) as f64 / span * plot_w;
            let w = (x1 - x0).max(0.25);
            s.push_str(&format!(
                "<rect x=\"{x0:.2}\" y=\"{y}\" width=\"{w:.2}\" height=\"{}\" fill=\"{}\">\
                 <title>{:?} [{} us, {} us)</title></rect>\n",
                opts.row_height_px,
                iv.activity.color(),
                iv.activity,
                iv.start,
                iv.end
            ));
        }
    }
    // Markers as vertical dashed lines.
    for (t, label) in log.markers() {
        if *t < lo || *t >= hi {
            continue;
        }
        let x = LEFT_MARGIN as f64 + (*t - lo) as f64 / span * plot_w;
        let y1 = TOP_MARGIN + rows * (opts.row_height_px + 4);
        s.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{TOP_MARGIN}\" x2=\"{x:.1}\" y2=\"{y1}\" \
             stroke=\"#cc0000\" stroke-dasharray=\"4 3\"/>\n\
             <text x=\"{:.1}\" y=\"{}\" fill=\"#cc0000\">{}</text>\n",
            x + 3.0,
            y1 + 14,
            xml_escape(label)
        ));
    }
    s.push_str("</svg>\n");
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Activity;

    fn log() -> TraceLog {
        let mut log = TraceLog::new(2);
        log.record(0, 0, 500, Activity::Task { chare: 3 });
        log.record(1, 100, 400, Activity::Background { job: 0 });
        log.marker(250, "lb <step>");
        log
    }

    #[test]
    fn produces_wellformed_svg_shell() {
        let svg = render_svg(&log(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 4); // 2 row bg + 2 intervals
    }

    #[test]
    fn escapes_marker_labels() {
        let svg = render_svg(&log(), &SvgOptions::default());
        assert!(svg.contains("lb &lt;step&gt;"));
    }

    #[test]
    fn title_rendered_when_set() {
        let svg = render_svg(
            &log(),
            &SvgOptions { title: "Fig 1".into(), ..Default::default() },
        );
        assert!(svg.contains("Fig 1"));
    }

    #[test]
    fn window_clips_intervals() {
        let svg = render_svg(
            &log(),
            &SvgOptions { start: Some(600), end: Some(700), ..Default::default() },
        );
        // Only the two row backgrounds remain.
        assert_eq!(svg.matches("<rect").count(), 2);
    }
}
