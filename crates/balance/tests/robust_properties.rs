//! Randomized robustness properties for the telemetry-hardened stack.
//!
//! * Bounded multiplicative perturbation of the telemetry inputs (task
//!   loads and background estimates off by at most δ) keeps the *true*
//!   makespan of the perturbed plan within `(1+δ)/(1−δ)` of the clean
//!   one — noisy counters can cost precision, never a blow-up.
//! * The hysteresis wrapper never commits an A→B→A bounce on a static
//!   load, no matter what its inner strategy proposes.
//!
//! Databases come from the repo's deterministic `SimRng`, so every run
//! exercises the same reproducible corpus.

use cloudlb_balance::strategy::{apply_plan, validate_plan};
use cloudlb_balance::{
    CloudRefineLb, HysteresisConfig, HysteresisLb, LbStats, LbStrategy, RobustConfig, RobustLb,
    TaskId, TaskInfo,
};
use cloudlb_sim::SimRng;

const CASES: usize = 128;

/// Random database: 2–16 PEs, fine decomposition, one-to-few interfered
/// cores — the regime the cloud balancer targets.
fn arb_stats(rng: &mut SimRng) -> LbStats {
    let pes = rng.range_u64(2, 17) as usize;
    let per_pe = rng.range_u64(4, 13) as usize;
    let mut s = LbStats::new(pes);
    let mut id = 0u64;
    for pe in 0..pes {
        for _ in 0..per_pe {
            s.tasks.push(TaskInfo {
                id: TaskId(id),
                pe,
                load: rng.range_f64(0.05, 0.3),
                bytes: 1024,
            });
            id += 1;
        }
    }
    for _ in 0..rng.range_u64(1, 3) {
        let pe = rng.below(pes as u64) as usize;
        s.bg_load[pe] += rng.range_f64(0.5, 2.0);
    }
    s
}

/// Multiplicatively perturb every telemetry-derived number by at most δ
/// and mark the snapshot as lower-confidence, the way `lbdb` would.
fn perturb(stats: &LbStats, delta: f64, rng: &mut SimRng) -> LbStats {
    let mut p = stats.clone();
    for t in &mut p.tasks {
        t.load *= rng.range_f64(1.0 - delta, 1.0 + delta);
    }
    for bg in &mut p.bg_load {
        *bg *= rng.range_f64(1.0 - delta, 1.0 + delta);
    }
    p.confidence = vec![1.0 - delta; p.num_pes];
    p
}

fn max_total(stats: &LbStats) -> f64 {
    stats.total_loads().into_iter().fold(0.0, f64::max)
}

#[test]
fn bounded_perturbation_gives_bounded_plan_divergence() {
    let mut rng = SimRng::new(0x20B0_57A1);
    for case in 0..CASES {
        let truth = arb_stats(&mut rng);
        let delta = rng.range_f64(0.0, 0.25);
        let noisy = perturb(&truth, delta, &mut rng);

        let noisy_plan = CloudRefineLb::default().plan(&noisy);
        validate_plan(&noisy, &noisy_plan);

        // Judge both plans on the TRUE load. A plan computed from
        // δ-perturbed inputs may not refine as far, but it must never
        // make the true makespan worse than the perturbation factor:
        // refinement never raises the perceived makespan, and each true
        // load element is within [pert/(1+δ), pert/(1−δ)].
        let true_after_noisy = max_total(&apply_plan(&truth, &noisy_plan));
        let true_before = max_total(&truth);
        let bound = true_before * (1.0 + delta) / (1.0 - delta) + 1e-9;
        assert!(
            true_after_noisy <= bound,
            "case {case}: perturbed plan pushed true makespan to \
             {true_after_noisy} > bound {bound} (δ = {delta})"
        );
    }
}

#[test]
fn robust_wrapper_is_deterministic_and_structurally_valid_under_noise() {
    let mut rng = SimRng::new(0x20B0_57A2);
    for _ in 0..CASES {
        let truth = arb_stats(&mut rng);
        let noisy = perturb(&truth, 0.2, &mut rng);
        let mut a = RobustLb::new(CloudRefineLb::default(), RobustConfig::default());
        let mut b = RobustLb::new(CloudRefineLb::default(), RobustConfig::default());
        let pa = a.plan(&noisy);
        validate_plan(&noisy, &pa);
        assert_eq!(pa, b.plan(&noisy), "robust wrapper must stay deterministic");
    }
}

#[test]
fn hysteresis_never_commits_a_bounce_on_static_load() {
    let mut rng = SimRng::new(0x20B0_57A3);
    for case in 0..CASES {
        let mut stats = arb_stats(&mut rng);
        let memory = HysteresisConfig::default().memory;
        let mut lb = HysteresisLb::new(CloudRefineLb::default(), HysteresisConfig::default());
        // (task, from, to, step) log of committed moves.
        let mut history: Vec<(TaskId, usize, usize, usize)> = Vec::new();
        for step in 0..12 {
            let plan = lb.plan(&stats);
            validate_plan(&stats, &plan);
            let before = max_total(&stats);
            stats = apply_plan(&stats, &plan);
            assert!(
                max_total(&stats) <= before + 1e-9,
                "case {case}: committed plan worsened the static makespan"
            );
            for m in &plan {
                for &(task, from, to, when) in &history {
                    assert!(
                        !(task == m.task
                            && from == m.to
                            && to == m.from
                            && step - when <= memory),
                        "case {case}: task {:?} bounced {}→{}→{} within \
                         {memory} steps of step {when}",
                        m.task,
                        from,
                        to,
                        from
                    );
                }
                history.push((m.task, m.from, m.to, step));
            }
        }
    }
}
