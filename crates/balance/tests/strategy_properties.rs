//! Randomized tests over all load-balancing strategies.
//!
//! Invariants checked on random databases:
//! * plans are structurally valid (no duplicates, correct `from`, in-range
//!   destinations);
//! * strategies are deterministic;
//! * refinement never increases the perceived makespan and never pushes a
//!   receiver above `T_avg + ε`;
//! * refinement migrates no more than greedy on interfered snapshots;
//! * greedy (bg-aware) achieves near-optimal balance on homogeneous tasks.
//!
//! Databases are generated with the repo's deterministic `SimRng` from
//! fixed seeds, so every run exercises the same reproducible corpus.

use cloudlb_balance::strategy::{apply_plan, validate_plan};
use cloudlb_balance::{
    CloudRefineLb, CommEdge, CommRefineLb, GreedyLb, LbStats, LbStrategy, NoLb, RefineLb, TaskId,
    TaskInfo,
};
use cloudlb_sim::SimRng;

/// Random database: 1–16 PEs, 0–128 tasks, loads in [0, 2], bg in [0, 4],
/// plus a random communication graph over the tasks.
fn arb_stats(rng: &mut SimRng) -> LbStats {
    let pes = rng.range_u64(1, 16) as usize;
    let ntasks = rng.below(128) as usize;
    let mut s = LbStats::new(pes);
    s.tasks = (0..ntasks)
        .map(|i| TaskInfo {
            id: TaskId(i as u64),
            pe: rng.below(pes as u64) as usize,
            load: rng.range_f64(0.0, 2.0),
            bytes: rng.below(1_000_000),
        })
        .collect();
    s.bg_load = (0..pes).map(|_| rng.range_f64(0.0, 4.0)).collect();
    let nedges = rng.below((ntasks / 2 + 1) as u64) as usize;
    s.comm = (0..nedges)
        .map(|_| {
            (
                rng.below(ntasks.max(1) as u64) as usize,
                rng.below(ntasks.max(1) as u64) as usize,
                rng.range_u64(1, 1_000_000),
            )
        })
        .filter(|(a, b, _)| a != b && *a < ntasks && *b < ntasks)
        .map(|(a, b, bytes)| CommEdge { a: TaskId(a as u64), b: TaskId(b as u64), bytes })
        .collect();
    s
}

fn max_total(stats: &LbStats) -> f64 {
    stats.total_loads().into_iter().fold(0.0, f64::max)
}

fn all_strategies() -> Vec<Box<dyn LbStrategy>> {
    vec![
        Box::new(NoLb),
        Box::new(GreedyLb::classic()),
        Box::new(GreedyLb::interference_aware()),
        Box::new(RefineLb::default()),
        Box::new(CloudRefineLb::default()),
        Box::new(CloudRefineLb::with_epsilon(0.0)),
        Box::new(CommRefineLb::default()),
    ]
}

const CASES: usize = 192;

#[test]
fn plans_are_structurally_valid() {
    let mut rng = SimRng::new(0x0051_A701);
    for _ in 0..CASES {
        let stats = arb_stats(&mut rng);
        for mut lb in all_strategies() {
            let plan = lb.plan(&stats);
            validate_plan(&stats, &plan);
        }
    }
}

#[test]
fn strategies_are_deterministic() {
    let mut rng = SimRng::new(0x0051_A702);
    for _ in 0..CASES {
        let stats = arb_stats(&mut rng);
        for (mut a, mut b) in all_strategies().into_iter().zip(all_strategies()) {
            assert_eq!(a.plan(&stats), b.plan(&stats), "strategy {}", a.name());
        }
    }
}

#[test]
fn refinement_never_worsens_makespan() {
    let mut rng = SimRng::new(0x0051_A703);
    for _ in 0..CASES {
        let stats = arb_stats(&mut rng);
        let mut lb = CloudRefineLb::default();
        let plan = lb.plan(&stats);
        let after = apply_plan(&stats, &plan);
        assert!(max_total(&after) <= max_total(&stats) + 1e-9);
    }
}

#[test]
fn receivers_stay_within_tolerance() {
    // Every core that *receives* work must end at or below T_avg + ε
    // (Algorithm 1 line 12). Donors may stay above if nothing fits.
    let mut rng = SimRng::new(0x0051_A704);
    for _ in 0..CASES {
        let stats = arb_stats(&mut rng);
        let eps_frac = 0.05;
        let mut lb = CloudRefineLb::with_epsilon(eps_frac);
        let plan = lb.plan(&stats);
        let t_avg = stats.t_avg();
        let after = apply_plan(&stats, &plan);
        let loads = after.total_loads();
        for m in &plan {
            assert!(
                loads[m.to] <= t_avg + eps_frac * t_avg + 1e-9,
                "receiver pe{} at {} exceeds {}",
                m.to,
                loads[m.to],
                t_avg * (1.0 + eps_frac)
            );
        }
    }
}

#[test]
fn donors_only_shed_load() {
    let mut rng = SimRng::new(0x0051_A705);
    for _ in 0..CASES {
        let stats = arb_stats(&mut rng);
        let mut lb = CloudRefineLb::default();
        let plan = lb.plan(&stats);
        let before = stats.total_loads();
        let after = apply_plan(&stats, &plan).total_loads();
        let donors: std::collections::HashSet<usize> = plan.iter().map(|m| m.from).collect();
        let receivers: std::collections::HashSet<usize> = plan.iter().map(|m| m.to).collect();
        for pe in donors.difference(&receivers) {
            assert!(after[*pe] <= before[*pe] + 1e-9);
        }
    }
}

#[test]
fn refine_migrates_at_most_as_much_as_greedy_moves() {
    // Refinement is the paper's minimal-churn point; greedy reassigns
    // from scratch. Compare moved-task counts.
    let mut rng = SimRng::new(0x0051_A706);
    for _ in 0..CASES {
        let stats = arb_stats(&mut rng);
        let refine = CloudRefineLb::default().plan(&stats);
        let greedy = GreedyLb::interference_aware().plan(&stats);
        // Greedy may incidentally keep tasks in place; only assert when it
        // actually had to move most things (the common interfered case).
        if greedy.len() >= stats.tasks.len() / 2 {
            assert!(refine.len() <= greedy.len());
        }
    }
}

#[test]
fn greedy_bg_aware_balances_uniform_tasks() {
    // All tasks equal, no interference: greedy must achieve ratio
    // max/avg <= 1 + 1/(tasks per pe).
    let mut rng = SimRng::new(0x0051_A707);
    for _ in 0..CASES {
        let pes = rng.range_u64(2, 9) as usize;
        let per_pe = rng.range_u64(2, 9) as usize;
        let mut s = LbStats::new(pes);
        let n = pes * per_pe;
        for i in 0..n {
            s.tasks.push(TaskInfo { id: TaskId(i as u64), pe: 0, load: 1.0, bytes: 0 });
        }
        let plan = GreedyLb::interference_aware().plan(&s);
        let after = apply_plan(&s, &plan);
        let loads = after.total_loads();
        let max = loads.iter().copied().fold(0.0, f64::max);
        let avg = s.t_avg();
        assert!(max / avg <= 1.0 + 1.0 / per_pe as f64 + 1e-9, "max {max} avg {avg}");
    }
}

#[test]
fn cloud_refine_fixes_single_interfered_core() {
    // Uniformly decomposed app + one interfered core: after LB the
    // perceived makespan must drop strictly. The generator stays in
    // the regime Algorithm 1 targets: interference large enough that
    // other cores fall below `T_avg − ε` (needs `bg > ε·P/(1−ε)`, so
    // bg ≥ 1.5 covers P ≤ 16 at ε = 5 %), and decomposition fine
    // enough that a task fits the receivers' headroom (≥ 8 chares per
    // core). Outside that regime an empty plan is the *correct*
    // output — covered by `all_cores_overloaded_by_bg_terminates` and
    // the ε-sweep ablation.
    let mut rng = SimRng::new(0x0051_A708);
    for _ in 0..CASES {
        let pes = rng.range_u64(2, 17) as usize;
        let per_pe = rng.range_u64(8, 17) as usize;
        let bg = rng.range_f64(1.5, 3.0);
        let mut s = LbStats::new(pes);
        let task_load = 1.0 / per_pe as f64;
        let mut id = 0u64;
        for pe in 0..pes {
            for _ in 0..per_pe {
                s.tasks.push(TaskInfo { id: TaskId(id), pe, load: task_load, bytes: 1024 });
                id += 1;
            }
        }
        s.bg_load[0] = bg;
        let plan = CloudRefineLb::default().plan(&s);
        assert!(!plan.is_empty());
        let after = apply_plan(&s, &plan);
        assert!(max_total(&after) < max_total(&s) - 1e-9);
    }
}
