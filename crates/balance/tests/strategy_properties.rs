//! Property-based tests over all load-balancing strategies.
//!
//! Invariants checked on random databases:
//! * plans are structurally valid (no duplicates, correct `from`, in-range
//!   destinations);
//! * strategies are deterministic;
//! * refinement never increases the perceived makespan and never pushes a
//!   receiver above `T_avg + ε`;
//! * refinement migrates no more than greedy on interfered snapshots;
//! * greedy (bg-aware) achieves near-optimal balance on homogeneous tasks.

use cloudlb_balance::strategy::{apply_plan, validate_plan};
use cloudlb_balance::{
    CloudRefineLb, CommEdge, CommRefineLb, GreedyLb, LbStats, LbStrategy, NoLb, RefineLb, TaskId,
    TaskInfo,
};
use proptest::prelude::*;

/// Random database: 1–16 PEs, 0–128 tasks, loads in [0, 2], bg in [0, 4],
/// plus a random communication graph over the tasks.
fn arb_stats() -> impl Strategy<Value = LbStats> {
    (1usize..16, 0usize..128).prop_flat_map(|(pes, ntasks)| {
        let tasks = proptest::collection::vec((0..pes, 0.0f64..2.0, 0u64..1_000_000), ntasks);
        let bg = proptest::collection::vec(0.0f64..4.0, pes);
        let edges = proptest::collection::vec(
            (0usize..ntasks.max(1), 0usize..ntasks.max(1), 1u64..1_000_000),
            0..(ntasks / 2 + 1),
        );
        (Just(pes), tasks, bg, edges).prop_map(|(pes, raw, bg, edges)| {
            let mut s = LbStats::new(pes);
            s.tasks = raw
                .into_iter()
                .enumerate()
                .map(|(i, (pe, load, bytes))| TaskInfo { id: TaskId(i as u64), pe, load, bytes })
                .collect();
            s.bg_load = bg;
            s.comm = edges
                .into_iter()
                .filter(|(a, b, _)| a != b && *a < s.tasks.len() && *b < s.tasks.len())
                .map(|(a, b, bytes)| CommEdge { a: TaskId(a as u64), b: TaskId(b as u64), bytes })
                .collect();
            s
        })
    })
}

fn max_total(stats: &LbStats) -> f64 {
    stats.total_loads().into_iter().fold(0.0, f64::max)
}

fn all_strategies() -> Vec<Box<dyn LbStrategy>> {
    vec![
        Box::new(NoLb),
        Box::new(GreedyLb::classic()),
        Box::new(GreedyLb::interference_aware()),
        Box::new(RefineLb::default()),
        Box::new(CloudRefineLb::default()),
        Box::new(CloudRefineLb::with_epsilon(0.0)),
        Box::new(CommRefineLb::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn plans_are_structurally_valid(stats in arb_stats()) {
        for mut lb in all_strategies() {
            let plan = lb.plan(&stats);
            validate_plan(&stats, &plan);
        }
    }

    #[test]
    fn strategies_are_deterministic(stats in arb_stats()) {
        for (mut a, mut b) in all_strategies().into_iter().zip(all_strategies()) {
            prop_assert_eq!(a.plan(&stats), b.plan(&stats));
        }
    }

    #[test]
    fn refinement_never_worsens_makespan(stats in arb_stats()) {
        let mut lb = CloudRefineLb::default();
        let plan = lb.plan(&stats);
        let after = apply_plan(&stats, &plan);
        prop_assert!(max_total(&after) <= max_total(&stats) + 1e-9);
    }

    #[test]
    fn receivers_stay_within_tolerance(stats in arb_stats()) {
        // Every core that *receives* work must end at or below T_avg + ε
        // (Algorithm 1 line 12). Donors may stay above if nothing fits.
        let eps_frac = 0.05;
        let mut lb = CloudRefineLb::with_epsilon(eps_frac);
        let plan = lb.plan(&stats);
        let t_avg = stats.t_avg();
        let after = apply_plan(&stats, &plan);
        let loads = after.total_loads();
        for m in &plan {
            prop_assert!(
                loads[m.to] <= t_avg + eps_frac * t_avg + 1e-9,
                "receiver pe{} at {} exceeds {}", m.to, loads[m.to], t_avg * (1.0 + eps_frac)
            );
        }
    }

    #[test]
    fn donors_only_shed_load(stats in arb_stats()) {
        let mut lb = CloudRefineLb::default();
        let plan = lb.plan(&stats);
        let before = stats.total_loads();
        let after = apply_plan(&stats, &plan).total_loads();
        let donors: std::collections::HashSet<usize> = plan.iter().map(|m| m.from).collect();
        let receivers: std::collections::HashSet<usize> = plan.iter().map(|m| m.to).collect();
        for pe in donors.difference(&receivers) {
            prop_assert!(after[*pe] <= before[*pe] + 1e-9);
        }
    }

    #[test]
    fn refine_migrates_at_most_as_much_as_greedy_moves(stats in arb_stats()) {
        // Refinement is the paper's minimal-churn point; greedy reassigns
        // from scratch. Compare moved-task counts.
        let refine = CloudRefineLb::default().plan(&stats);
        let greedy = GreedyLb::interference_aware().plan(&stats);
        // Greedy may incidentally keep tasks in place; only assert when it
        // actually had to move most things (the common interfered case).
        if greedy.len() >= stats.tasks.len() / 2 {
            prop_assert!(refine.len() <= greedy.len());
        }
    }

    #[test]
    fn greedy_bg_aware_balances_uniform_tasks(pes in 2usize..9, per_pe in 2usize..9) {
        // All tasks equal, no interference: greedy must achieve ratio
        // max/avg <= 1 + 1/(tasks per pe).
        let mut s = LbStats::new(pes);
        let n = pes * per_pe;
        for i in 0..n {
            s.tasks.push(TaskInfo { id: TaskId(i as u64), pe: 0, load: 1.0, bytes: 0 });
        }
        let plan = GreedyLb::interference_aware().plan(&s);
        let after = apply_plan(&s, &plan);
        let loads = after.total_loads();
        let max = loads.iter().copied().fold(0.0, f64::max);
        let avg = s.t_avg();
        prop_assert!(max / avg <= 1.0 + 1.0 / per_pe as f64 + 1e-9, "max {max} avg {avg}");
    }

    #[test]
    fn cloud_refine_fixes_single_interfered_core(
        pes in 2usize..17,
        per_pe in 8usize..17,
        bg in 1.5f64..3.0,
    ) {
        // Uniformly decomposed app + one interfered core: after LB the
        // perceived makespan must drop strictly. The generator stays in
        // the regime Algorithm 1 targets: interference large enough that
        // other cores fall below `T_avg − ε` (needs `bg > ε·P/(1−ε)`, so
        // bg ≥ 1.5 covers P ≤ 16 at ε = 5 %), and decomposition fine
        // enough that a task fits the receivers' headroom (≥ 8 chares per
        // core). Outside that regime an empty plan is the *correct*
        // output — covered by `all_cores_overloaded_by_bg_terminates` and
        // the ε-sweep ablation.
        let mut s = LbStats::new(pes);
        let task_load = 1.0 / per_pe as f64;
        let mut id = 0u64;
        for pe in 0..pes {
            for _ in 0..per_pe {
                s.tasks.push(TaskInfo { id: TaskId(id), pe, load: task_load, bytes: 1024 });
                id += 1;
            }
        }
        s.bg_load[0] = bg;
        let plan = CloudRefineLb::default().plan(&s);
        prop_assert!(!plan.is_empty());
        let after = apply_plan(&s, &plan);
        prop_assert!(max_total(&after) < max_total(&s) - 1e-9);
    }
}
