//! Anti-thrash hysteresis — migration suppression under noisy telemetry.
//!
//! [`crate::gated`] asks "does the gain offset the migration *cost*?".
//! This wrapper generalizes the question to "does the gain exceed what the
//! telemetry can even resolve?". When `O_p` is estimated from jittery
//! `/proc/stat` counters, small predicted gains are indistinguishable from
//! measurement noise, and committing them makes the balancer chase its own
//! error term — migrating chares back and forth every window. Two guards:
//!
//! 1. **Noise-floor gate** — the plan's predicted makespan reduction must
//!    exceed a floor that grows as per-core confidence (tagged by the
//!    runtime's window validation) drops. Perfect telemetry leaves only a
//!    small deadband; garbage telemetry demands a decisive gain.
//! 2. **Oscillation damper** — a migration returning a task to the core it
//!    occupied just before its most recent move (A→B→A) is dropped: that
//!    pattern means the two placements are equivalent modulo noise.

use crate::db::{LbStats, TaskId};
use crate::strategy::{apply_plan, DecisionQuality, LbStrategy, Migration};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Tuning for the hysteresis guards.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HysteresisConfig {
    /// Deadband under perfect telemetry: a plan must reduce the predicted
    /// makespan by at least this fraction of `T_avg`.
    pub min_gain_frac: f64,
    /// How fast the floor grows with distrust: the floor gains
    /// `noise_scale × (1 − mean confidence) × T_avg`.
    pub noise_scale: f64,
    /// Oscillation memory: a task's return to its previous core is blocked
    /// only within this many LB steps of the outbound move.
    pub memory: usize,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig { min_gain_frac: 0.02, noise_scale: 0.5, memory: 4 }
    }
}

impl HysteresisConfig {
    /// The telemetry noise floor for this snapshot (seconds of predicted
    /// makespan reduction a plan must beat).
    pub fn noise_floor_s(&self, stats: &LbStats) -> f64 {
        (self.min_gain_frac + self.noise_scale * (1.0 - stats.mean_confidence())) * stats.t_avg()
    }
}

/// A task's last committed move: the step it happened and where from/to.
#[derive(Debug, Clone, Copy)]
struct LastMove {
    step: usize,
    from: usize,
    to: usize,
}

/// Wraps any strategy with the noise-floor gate and oscillation damper.
pub struct HysteresisLb<S: LbStrategy> {
    inner: S,
    /// Guard parameters.
    pub config: HysteresisConfig,
    /// LB steps seen (drives oscillation-memory expiry).
    step: usize,
    last_move: HashMap<TaskId, LastMove>,
    quality: DecisionQuality,
}

impl<S: LbStrategy> HysteresisLb<S> {
    /// Guard `inner` with `config`.
    pub fn new(inner: S, config: HysteresisConfig) -> Self {
        assert!(config.min_gain_frac >= 0.0, "negative deadband");
        assert!(config.noise_scale >= 0.0, "negative noise scale");
        HysteresisLb { inner, config, step: 0, last_move: HashMap::new(), quality: DecisionQuality::default() }
    }

    /// Migrations suppressed by the noise-floor gate so far.
    pub fn suppressed(&self) -> usize {
        self.quality.suppressed
    }

    /// A→B→A patterns blocked so far.
    pub fn oscillations(&self) -> usize {
        self.quality.oscillations
    }
}

impl<S: LbStrategy> LbStrategy for HysteresisLb<S> {
    fn name(&self) -> &'static str {
        "Hysteresis"
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        self.step += 1;
        let proposed = self.inner.plan(stats);
        if proposed.is_empty() {
            return proposed;
        }

        // Drop migrations that undo a recent move (A→B→A): the task would
        // return to where it sat one move ago, which under noisy telemetry
        // means both placements are equivalent and the balancer is chasing
        // noise.
        let step = self.step;
        let memory = self.config.memory;
        let mut kept = Vec::with_capacity(proposed.len());
        for m in proposed {
            let bounce = self.last_move.get(&m.task).is_some_and(|lm| {
                lm.to == m.from && lm.from == m.to && step - lm.step <= memory
            });
            if bounce {
                self.quality.oscillations += 1;
            } else {
                kept.push(m);
            }
        }

        // Noise-floor gate on what survives: the predicted makespan
        // reduction must clear the telemetry's resolution.
        if !kept.is_empty() {
            let before = max_load(stats);
            let after = max_load(&apply_plan(stats, &kept));
            let gain = before - after;
            if gain < self.config.noise_floor_s(stats) {
                self.quality.suppressed += kept.len();
                kept.clear();
            }
        }

        for m in &kept {
            self.last_move.insert(m.task, LastMove { step, from: m.from, to: m.to });
        }
        // Expire stale entries so the map does not grow with dead tasks.
        self.last_move.retain(|_, lm| step - lm.step <= memory);
        kept
    }

    fn decision_quality(&self) -> DecisionQuality {
        let mut q = self.inner.decision_quality();
        q.merge(&self.quality);
        q
    }
}

fn max_load(stats: &LbStats) -> f64 {
    stats.total_loads().into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudRefineLb;
    use crate::db::TaskInfo;
    use crate::strategy::NoLb;

    fn imbalanced(conf: Option<Vec<f64>>) -> LbStats {
        let mut s = LbStats::new(4);
        for i in 0..32u64 {
            s.tasks.push(TaskInfo { id: TaskId(i), pe: (i % 4) as usize, load: 0.25, bytes: 64 });
        }
        s.bg_load = vec![2.0, 0.0, 0.0, 0.0];
        if let Some(c) = conf {
            s.confidence = c;
        }
        s
    }

    #[test]
    fn clear_gain_passes_with_full_confidence() {
        let mut lb = HysteresisLb::new(CloudRefineLb::default(), HysteresisConfig::default());
        let plan = lb.plan(&imbalanced(None));
        assert!(!plan.is_empty());
        assert_eq!(lb.suppressed(), 0);
    }

    #[test]
    fn low_confidence_raises_the_floor_and_suppresses() {
        // Same imbalance, but the telemetry is garbage: demand a gain the
        // plan cannot certify.
        let cfg = HysteresisConfig { noise_scale: 10.0, ..Default::default() };
        let mut lb = HysteresisLb::new(CloudRefineLb::default(), cfg);
        let plan = lb.plan(&imbalanced(Some(vec![0.1, 0.1, 0.1, 0.1])));
        assert!(plan.is_empty());
        assert!(lb.suppressed() > 0);
        assert!(lb.decision_quality().suppressed > 0);
    }

    #[test]
    fn noise_floor_grows_as_confidence_drops() {
        let cfg = HysteresisConfig::default();
        let clean = imbalanced(None);
        let dirty = imbalanced(Some(vec![0.2; 4]));
        assert!(cfg.noise_floor_s(&dirty) > cfg.noise_floor_s(&clean));
    }

    #[test]
    fn a_b_a_bounce_is_blocked() {
        struct Bouncer {
            flip: bool,
        }
        impl LbStrategy for Bouncer {
            fn name(&self) -> &'static str {
                "Bouncer"
            }
            fn plan(&mut self, _stats: &LbStats) -> Vec<Migration> {
                self.flip = !self.flip;
                let (from, to) = if self.flip { (0, 1) } else { (1, 0) };
                vec![Migration { task: TaskId(0), from, to }]
            }
        }
        let mut s = LbStats::new(2);
        s.tasks.push(TaskInfo { id: TaskId(0), pe: 0, load: 1.0, bytes: 8 });
        s.bg_load = vec![5.0, 0.0]; // huge gain so the floor never triggers
        let mut lb = HysteresisLb::new(
            Bouncer { flip: false },
            HysteresisConfig { min_gain_frac: 0.0, noise_scale: 0.0, memory: 4 },
        );
        let first = lb.plan(&s); // 0 → 1 commits
        assert_eq!(first.len(), 1);
        s.tasks[0].pe = 1;
        let back = lb.plan(&s); // 1 → 0 is the A→B→A bounce
        assert!(back.is_empty(), "bounce must be damped");
        assert_eq!(lb.oscillations(), 1);
    }

    #[test]
    fn bounce_allowed_after_memory_expires() {
        // Symmetric cores: every move is gain-neutral, so only the
        // oscillation memory decides.
        let mut s = LbStats::new(2);
        s.tasks.push(TaskInfo { id: TaskId(0), pe: 0, load: 1.0, bytes: 8 });
        s.bg_load = vec![0.0, 0.0];
        let cfg = HysteresisConfig { min_gain_frac: 0.0, noise_scale: 0.0, memory: 1 };
        struct One(Option<Migration>);
        impl LbStrategy for One {
            fn name(&self) -> &'static str {
                "One"
            }
            fn plan(&mut self, _stats: &LbStats) -> Vec<Migration> {
                self.0.take().into_iter().collect()
            }
        }
        let mut lb = HysteresisLb::new(
            One(Some(Migration { task: TaskId(0), from: 0, to: 1 })),
            cfg,
        );
        assert_eq!(lb.plan(&s).len(), 1);
        s.tasks[0].pe = 1;
        assert!(lb.plan(&s).is_empty()); // inner proposes nothing; step advances
        // Memory (1 step) has expired: the return move is legitimate now.
        lb.inner.0 = Some(Migration { task: TaskId(0), from: 1, to: 0 });
        assert_eq!(lb.plan(&s).len(), 1);
        assert_eq!(lb.oscillations(), 0);
    }

    #[test]
    fn transparent_when_inner_plans_nothing() {
        let mut lb = HysteresisLb::new(NoLb, HysteresisConfig::default());
        assert!(lb.plan(&imbalanced(None)).is_empty());
        assert_eq!(lb.decision_quality(), DecisionQuality::default());
    }
}
