//! Classic refinement load balancing (pre-paper state of the art).
//!
//! Identical to the paper's Algorithm 1 *except* that it only sees load
//! internal to the application — `O_p` is ignored. Under VM interference
//! it therefore sees a perfectly balanced application and does nothing,
//! which is exactly the failure mode motivating the paper.

use crate::cloud::refine_plan;
use crate::db::LbStats;
use crate::strategy::{LbStrategy, Migration};

/// Classic RefineLB: refinement over application-internal load only.
#[derive(Debug, Clone)]
pub struct RefineLb {
    /// Tolerance as a fraction of `T_avg`.
    pub epsilon_frac: f64,
}

impl Default for RefineLb {
    fn default() -> Self {
        RefineLb { epsilon_frac: 0.05 }
    }
}

impl LbStrategy for RefineLb {
    fn name(&self) -> &'static str {
        "RefineLB"
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        refine_plan(stats, self.epsilon_frac, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{TaskId, TaskInfo};
    use crate::strategy::{apply_plan, validate_plan};

    fn skewed() -> LbStats {
        // Application-internal imbalance: pe0 hosts 12 tasks, pe1 hosts 4.
        let mut s = LbStats::new(2);
        for i in 0..16u64 {
            let pe = if i < 12 { 0 } else { 1 };
            s.tasks.push(TaskInfo { id: TaskId(i), pe, load: 0.5, bytes: 64 });
        }
        s
    }

    #[test]
    fn fixes_internal_imbalance() {
        let mut lb = RefineLb::default();
        let s = skewed();
        let plan = lb.plan(&s);
        validate_plan(&s, &plan);
        let after = apply_plan(&s, &plan);
        let loads = after.task_loads();
        assert!((loads[0] - loads[1]).abs() <= 0.5 + 1e-9, "{loads:?}");
    }

    #[test]
    fn blind_to_interference() {
        let mut s = skewed();
        // Heavy interference on pe1 — classic refinement cannot see it and
        // still plans as if pe1 were the underloaded core.
        s.bg_load = vec![0.0, 100.0];
        let plan = RefineLb::default().plan(&s);
        assert!(plan.iter().all(|m| m.to == 1), "classic refine dumps onto the interfered core");
    }

    #[test]
    fn name_distinguishes_from_cloud_variant() {
        assert_eq!(RefineLb::default().name(), "RefineLB");
    }
}
