//! Load prediction under the principle of persistence.
//!
//! The paper (§III) predicts "future loads will be almost the same as
//! measured loads (principle of persistence)" — i.e. a last-value
//! predictor. An exponential moving average is provided as a smoother
//! alternative for noisy measurements (used in the ABL-INSTR ablation,
//! where wall-time instrumentation injects interference noise into task
//! loads).

use crate::db::TaskId;
use std::collections::HashMap;

/// Predicts a task's next-window load from its observation history.
pub trait Predictor: Send {
    /// Feed one measured load for `task`.
    fn observe(&mut self, task: TaskId, load: f64);

    /// Predicted load for the next window; `None` before any observation.
    fn predict(&self, task: TaskId) -> Option<f64>;

    /// Drop state for a task that no longer exists.
    fn forget(&mut self, task: TaskId);

    /// Garbage-collect: keep state only for the tasks in `live`. Called by
    /// the runtime after migrations or chare loss so stale entries do not
    /// accumulate (and leak) across LB steps.
    fn retain_tasks(&mut self, live: &std::collections::HashSet<TaskId>);
}

/// The paper's persistence principle: next load = last measured load.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: HashMap<TaskId, f64>,
}

impl Predictor for LastValue {
    fn observe(&mut self, task: TaskId, load: f64) {
        self.last.insert(task, load);
    }

    fn predict(&self, task: TaskId) -> Option<f64> {
        self.last.get(&task).copied()
    }

    fn forget(&mut self, task: TaskId) {
        self.last.remove(&task);
    }

    fn retain_tasks(&mut self, live: &std::collections::HashSet<TaskId>) {
        self.last.retain(|t, _| live.contains(t));
    }
}

/// Exponential moving average: `ema ← α·x + (1−α)·ema`.
#[derive(Debug, Clone)]
pub struct ExpAverage {
    /// Smoothing factor in `(0, 1]`; 1.0 degenerates to [`LastValue`].
    pub alpha: f64,
    ema: HashMap<TaskId, f64>,
}

impl ExpAverage {
    /// Create with smoothing factor `alpha ∈ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of (0, 1]");
        ExpAverage { alpha, ema: HashMap::new() }
    }
}

impl Predictor for ExpAverage {
    fn observe(&mut self, task: TaskId, load: f64) {
        let e = self.ema.entry(task).or_insert(load);
        *e = self.alpha * load + (1.0 - self.alpha) * *e;
    }

    fn predict(&self, task: TaskId) -> Option<f64> {
        self.ema.get(&task).copied()
    }

    fn forget(&mut self, task: TaskId) {
        self.ema.remove(&task);
    }

    fn retain_tasks(&mut self, live: &std::collections::HashSet<TaskId>) {
        self.ema.retain(|t, _| live.contains(t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_latest() {
        let mut p = LastValue::default();
        assert_eq!(p.predict(TaskId(0)), None);
        p.observe(TaskId(0), 1.0);
        p.observe(TaskId(0), 3.0);
        assert_eq!(p.predict(TaskId(0)), Some(3.0));
        p.forget(TaskId(0));
        assert_eq!(p.predict(TaskId(0)), None);
    }

    #[test]
    fn ema_smooths_spikes() {
        let mut p = ExpAverage::new(0.5);
        p.observe(TaskId(1), 1.0);
        p.observe(TaskId(1), 1.0);
        p.observe(TaskId(1), 5.0); // one noisy window
        let pred = p.predict(TaskId(1)).unwrap();
        assert!(pred > 1.0 && pred < 5.0, "{pred}");
        assert!((pred - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ema_alpha_one_is_last_value() {
        let mut p = ExpAverage::new(1.0);
        p.observe(TaskId(2), 4.0);
        p.observe(TaskId(2), 9.0);
        assert_eq!(p.predict(TaskId(2)), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "out of (0, 1]")]
    fn ema_rejects_bad_alpha() {
        ExpAverage::new(0.0);
    }

    #[test]
    fn retain_tasks_garbage_collects_dead_entries() {
        let live: std::collections::HashSet<TaskId> = [TaskId(0), TaskId(2)].into();
        let mut lv = LastValue::default();
        let mut ema = ExpAverage::new(0.5);
        for id in 0..4u64 {
            lv.observe(TaskId(id), id as f64);
            ema.observe(TaskId(id), id as f64);
        }
        lv.retain_tasks(&live);
        ema.retain_tasks(&live);
        for id in 0..4u64 {
            let expect_live = live.contains(&TaskId(id));
            assert_eq!(lv.predict(TaskId(id)).is_some(), expect_live, "LastValue task {id}");
            assert_eq!(ema.predict(TaskId(id)).is_some(), expect_live, "ExpAverage task {id}");
        }
    }

    #[test]
    fn ema_converges_to_constant_signal() {
        let mut p = ExpAverage::new(0.3);
        for _ in 0..100 {
            p.observe(TaskId(3), 2.5);
        }
        assert!((p.predict(TaskId(3)).unwrap() - 2.5).abs() < 1e-9);
    }
}
