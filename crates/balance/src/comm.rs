//! Communication-aware refinement — an extension the paper's future work
//! points toward ("Due to the inferior performance of network…", §VI).
//!
//! Identical to [`CloudRefineLb`](crate::cloud::CloudRefineLb) in *what*
//! it balances (task load plus the interference term `O_p`), but when a
//! task can go to several underloaded cores it prefers the core hosting
//! the task's communication partners. In a virtualized cluster where
//! cross-node messages pay the network-virtualization penalty, placing
//! ghost-exchange neighbors together converts remote messages into local
//! ones without giving up any load balance.

use crate::db::{LbStats, TaskId};
use crate::strategy::{LbStrategy, Migration};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Interference- and communication-aware refinement balancer.
#[derive(Debug, Clone)]
pub struct CommRefineLb {
    /// Tolerance `ε` as a fraction of `T_avg` (as in Algorithm 1).
    pub epsilon_frac: f64,
}

impl Default for CommRefineLb {
    fn default() -> Self {
        CommRefineLb { epsilon_frac: 0.05 }
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    load: f64,
    pe: usize,
}

impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.load.total_cmp(&other.load).then_with(|| other.pe.cmp(&self.pe))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl LbStrategy for CommRefineLb {
    fn name(&self) -> &'static str {
        "CommRefineLB"
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        stats.validate();
        let p = stats.num_pes;
        if p == 0 || stats.tasks.is_empty() {
            return Vec::new();
        }

        let mut loads = stats.task_loads();
        for (l, o) in loads.iter_mut().zip(&stats.bg_load) {
            *l += o;
        }
        let t_avg = loads.iter().sum::<f64>() / p as f64;
        let eps = self.epsilon_frac * t_avg;
        let is_heavy = |load: f64| load - t_avg > eps;
        let is_light = |load: f64| t_avg - load > eps;

        // CSR comm graph plus an evolving row→pe placement vector (for
        // affinity lookups as we migrate) — flat arrays instead of the
        // old per-call HashMap adjacency.
        let graph = stats.comm_graph();
        let mut placement: Vec<usize> = vec![0; graph.num_rows()];
        for t in &stats.tasks {
            placement[graph.row_of(t.id).expect("task is its own graph row")] = t.pe;
        }

        // Task lists carry the graph row so affinity needs no id lookup.
        let mut tasks_on: Vec<Vec<(f64, TaskId, usize)>> = vec![Vec::new(); p];
        for t in &stats.tasks {
            let row = graph.row_of(t.id).expect("task is its own graph row");
            tasks_on[t.pe].push((t.load, t.id, row));
        }
        for list in &mut tasks_on {
            list.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        }

        let mut overheap = BinaryHeap::new();
        let mut underset: Vec<usize> = Vec::new();
        for (pe, &load) in loads.iter().enumerate() {
            if is_heavy(load) {
                overheap.push(HeapEntry { load, pe });
            } else if is_light(load) {
                underset.push(pe);
            }
        }

        let mut plan = Vec::new();
        while let Some(HeapEntry { load, pe: donor }) = overheap.pop() {
            if (load - loads[donor]).abs() > 1e-12 {
                if is_heavy(loads[donor]) {
                    overheap.push(HeapEntry { load: loads[donor], pe: donor });
                }
                continue;
            }
            if underset.is_empty() {
                break;
            }

            // Biggest task that fits the *maximum* headroom anywhere.
            let max_headroom = underset
                .iter()
                .map(|&c| t_avg + eps - loads[c])
                .fold(f64::NEG_INFINITY, f64::max);
            let donor_tasks = &mut tasks_on[donor];
            let cut = donor_tasks.partition_point(|&(l, _, _)| l <= max_headroom);
            if cut == 0 {
                continue; // nothing fits anywhere
            }
            let (task_load, task_id, task_row) = donor_tasks.remove(cut - 1);

            // Among receivers with room, prefer communication affinity;
            // ties go to the least-loaded core, then the lowest index.
            let affinity = |core: usize| -> u64 {
                graph
                    .partners(task_row)
                    .filter(|&(peer, _)| placement[peer] == core)
                    .map(|(_, bytes)| bytes)
                    .sum()
            };
            let &best_core = underset
                .iter()
                .filter(|&&c| t_avg + eps - loads[c] >= task_load)
                .max_by(|&&a, &&b| {
                    affinity(a)
                        .cmp(&affinity(b))
                        .then_with(|| loads[b].total_cmp(&loads[a]))
                        .then_with(|| b.cmp(&a))
                })
                .expect("cut > 0 implies a receiver with room");

            plan.push(Migration { task: task_id, from: donor, to: best_core });
            placement[task_row] = best_core;
            loads[donor] -= task_load;
            loads[best_core] += task_load;
            if is_heavy(loads[donor]) {
                overheap.push(HeapEntry { load: loads[donor], pe: donor });
            } else if is_light(loads[donor]) {
                underset.push(donor);
            }
            if !is_light(loads[best_core]) {
                underset.retain(|&c| c != best_core);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{CommEdge, TaskInfo};
    use crate::strategy::{apply_plan, validate_plan};

    /// 4 cores, 8 chares/core of 0.25, interference on core 0, and a comm
    /// graph where core 0's tasks talk to tasks on core 3.
    fn stats_with_affinity() -> LbStats {
        let mut s = LbStats::new(4);
        for i in 0..32u64 {
            s.tasks.push(TaskInfo { id: TaskId(i), pe: (i % 4) as usize, load: 0.25, bytes: 1024 });
        }
        s.bg_load = vec![2.0, 0.0, 0.0, 0.0];
        // Tasks on pe0 (ids 0,4,8,...) each talk to a task on pe3
        // (ids 3,7,11,...).
        s.comm = (0..8)
            .map(|k| CommEdge { a: TaskId(4 * k), b: TaskId(4 * k + 3), bytes: 1 << 20 })
            .collect();
        s
    }

    #[test]
    fn plans_are_valid_and_balance_like_cloud_refine() {
        let s = stats_with_affinity();
        let plan = CommRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(!plan.is_empty());
        let after = apply_plan(&s, &plan);
        let cloud_plan = crate::cloud::CloudRefineLb::default().plan(&s);
        let after_cloud = apply_plan(&s, &cloud_plan);
        let max = |st: &LbStats| st.total_loads().into_iter().fold(0.0, f64::max);
        assert!((max(&after) - max(&after_cloud)).abs() < 0.26, "balance quality comparable");
    }

    #[test]
    fn prefers_the_core_hosting_partners() {
        let s = stats_with_affinity();
        let plan = CommRefineLb::default().plan(&s);
        // Every migrated task (from pe0) communicates with a partner on
        // pe3; the first moves must choose pe3 while it has headroom.
        assert_eq!(plan[0].to, 3, "{plan:?}");
    }

    #[test]
    fn without_comm_data_degenerates_to_least_loaded() {
        let mut s = stats_with_affinity();
        s.comm.clear();
        let plan = CommRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        // Least-loaded receiver is pe1 (tie broken by index).
        assert_eq!(plan[0].to, 1, "{plan:?}");
    }

    #[test]
    fn deterministic() {
        let s = stats_with_affinity();
        assert_eq!(CommRefineLb::default().plan(&s), CommRefineLb::default().plan(&s));
    }

    #[test]
    fn empty_inputs() {
        assert!(CommRefineLb::default().plan(&LbStats::new(0)).is_empty());
        assert!(CommRefineLb::default().plan(&LbStats::new(3)).is_empty());
    }
}
