//! Imbalance and plan-quality metrics used by reports and ablations.

use crate::db::LbStats;
use crate::strategy::Migration;
use serde::{Deserialize, Serialize};

/// Load-distribution metrics for one snapshot (Eq. 3's left-hand sides).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceMetrics {
    /// The paper's `T_avg` (Eq. 1).
    pub t_avg: f64,
    /// Largest per-core total load.
    pub max_load: f64,
    /// Smallest per-core total load.
    pub min_load: f64,
    /// `max / avg` ratio; 1.0 is perfect balance.
    pub ratio: f64,
    /// Population standard deviation of per-core loads.
    pub std_dev: f64,
    /// Number of cores violating `|load − T_avg| < ε` for the given
    /// tolerance fraction.
    pub violations: usize,
}

impl ImbalanceMetrics {
    /// Compute metrics over `stats` with tolerance `epsilon_frac · T_avg`.
    pub fn compute(stats: &LbStats, epsilon_frac: f64) -> Self {
        let loads = stats.total_loads();
        let t_avg = stats.t_avg();
        let max_load = loads.iter().copied().fold(0.0, f64::max);
        let min_load = loads.iter().copied().fold(f64::INFINITY, f64::min).min(max_load);
        let var = if loads.is_empty() {
            0.0
        } else {
            loads.iter().map(|l| (l - t_avg).powi(2)).sum::<f64>() / loads.len() as f64
        };
        let eps = epsilon_frac * t_avg;
        ImbalanceMetrics {
            t_avg,
            max_load,
            min_load,
            ratio: if t_avg > 0.0 { max_load / t_avg } else { 1.0 },
            std_dev: var.sqrt(),
            violations: loads.iter().filter(|l| (**l - t_avg).abs() > eps).count(),
        }
    }

    /// Eq. 3 satisfied: every core within ε of the average.
    pub fn is_balanced(&self) -> bool {
        self.violations == 0
    }
}

/// Cost-side metrics of a migration plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanMetrics {
    /// Number of migrations.
    pub migrations: usize,
    /// Total bytes moved.
    pub bytes: u64,
}

impl PlanMetrics {
    /// Compute plan metrics against the snapshot (for byte counts).
    pub fn compute(stats: &LbStats, plan: &[Migration]) -> Self {
        PlanMetrics {
            migrations: plan.len(),
            bytes: plan.iter().map(|m| stats.task(m.task).map_or(0, |t| t.bytes)).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{TaskId, TaskInfo};

    fn stats() -> LbStats {
        let mut s = LbStats::new(2);
        s.tasks.push(TaskInfo { id: TaskId(0), pe: 0, load: 3.0, bytes: 10 });
        s.tasks.push(TaskInfo { id: TaskId(1), pe: 1, load: 1.0, bytes: 20 });
        s
    }

    #[test]
    fn imbalance_numbers() {
        let m = ImbalanceMetrics::compute(&stats(), 0.05);
        assert_eq!(m.t_avg, 2.0);
        assert_eq!(m.max_load, 3.0);
        assert_eq!(m.min_load, 1.0);
        assert!((m.ratio - 1.5).abs() < 1e-12);
        assert!((m.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(m.violations, 2);
        assert!(!m.is_balanced());
    }

    #[test]
    fn balanced_snapshot_passes_eq3() {
        let mut s = LbStats::new(2);
        s.tasks.push(TaskInfo { id: TaskId(0), pe: 0, load: 1.0, bytes: 0 });
        s.tasks.push(TaskInfo { id: TaskId(1), pe: 1, load: 1.0, bytes: 0 });
        let m = ImbalanceMetrics::compute(&s, 0.05);
        assert!(m.is_balanced());
        assert!((m.ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn background_counts_toward_imbalance() {
        let mut s = LbStats::new(2);
        s.tasks.push(TaskInfo { id: TaskId(0), pe: 0, load: 1.0, bytes: 0 });
        s.tasks.push(TaskInfo { id: TaskId(1), pe: 1, load: 1.0, bytes: 0 });
        s.bg_load = vec![2.0, 0.0];
        let m = ImbalanceMetrics::compute(&s, 0.05);
        assert_eq!(m.max_load, 3.0);
        assert!(!m.is_balanced());
    }

    #[test]
    fn plan_metrics_count_bytes() {
        let s = stats();
        let plan = vec![Migration { task: TaskId(1), from: 1, to: 0 }];
        let pm = PlanMetrics::compute(&s, &plan);
        assert_eq!(pm.migrations, 1);
        assert_eq!(pm.bytes, 20);
    }

    #[test]
    fn empty_cases() {
        let m = ImbalanceMetrics::compute(&LbStats::new(0), 0.05);
        assert_eq!(m.ratio, 1.0);
        let pm = PlanMetrics::compute(&LbStats::new(0), &[]);
        assert_eq!(pm, PlanMetrics::default());
    }
}
