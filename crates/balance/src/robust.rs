//! Robust `O_p` estimation — a filtering stage in front of any strategy.
//!
//! The runtime's Eq. 2 pipeline hands a strategy whatever the counters
//! said, and on a cloud node the counters lie: jitter, clock skew, stale
//! snapshots and steal-time misattribution all land in `O_p` because it is
//! the closing term of the balance. This wrapper cleans the snapshot
//! before the wrapped strategy sees it:
//!
//! * **Median-of-recent-windows** per core over the accepted `O_p`
//!   samples, fused with an **EWMA** whose effective weight scales with the
//!   window's confidence tag — a low-confidence reading barely moves the
//!   estimate, a clean one tracks promptly.
//! * **Outlier rejection**: a low-confidence sample far outside the
//!   recent median ± MAD band is discarded outright (a high-confidence
//!   excursion is accepted — that is a real regime change, not noise).
//! * **Confidence-weighted task loads**: per-task loads are blended with
//!   their [`Predictor`] history (the paper's persistence principle) in
//!   proportion to the hosting core's confidence, and predictor state is
//!   garbage-collected to the live task set every step.
//!
//! The snapshot handed on keeps the original confidence tags, so a
//! downstream [`crate::hysteresis::HysteresisLb`] can still size its noise
//! floor from the raw telemetry quality.

use crate::db::LbStats;
use crate::predict::{ExpAverage, Predictor};
use crate::strategy::{DecisionQuality, LbStrategy, Migration};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Tuning for the robust estimator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RobustConfig {
    /// Accepted `O_p` samples kept per core for the median stage.
    pub history: usize,
    /// Base EWMA fusion weight; the effective weight is `ema_alpha ×
    /// confidence`, so distrusted windows update slowly.
    pub ema_alpha: f64,
    /// Reject a sample further than this many MADs from the recent median
    /// (only when its confidence is below [`RobustConfig::trust_confidence`]).
    pub outlier_mad: f64,
    /// Samples at or above this confidence are never outlier-rejected: a
    /// clean counter excursion is a real load change.
    pub trust_confidence: f64,
    /// Smoothing factor of the task-load predictor.
    pub load_alpha: f64,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            history: 5,
            ema_alpha: 0.5,
            outlier_mad: 4.0,
            trust_confidence: 0.9,
            load_alpha: 0.6,
        }
    }
}

/// Wraps any strategy behind the robust estimation stage.
pub struct RobustLb<S: LbStrategy> {
    inner: S,
    /// Estimator parameters.
    pub config: RobustConfig,
    /// Per-core accepted `O_p` samples, newest last.
    bg_history: Vec<VecDeque<f64>>,
    /// Per-core EWMA state.
    bg_fused: Vec<Option<f64>>,
    predictor: ExpAverage,
    quality: DecisionQuality,
}

impl<S: LbStrategy> RobustLb<S> {
    /// Put `inner` behind the estimator configured by `config`.
    pub fn new(inner: S, config: RobustConfig) -> Self {
        assert!(config.history >= 1, "need at least one window of history");
        assert!(config.ema_alpha > 0.0 && config.ema_alpha <= 1.0, "ema_alpha out of (0, 1]");
        assert!(config.outlier_mad > 0.0, "non-positive outlier band");
        RobustLb {
            inner,
            predictor: ExpAverage::new(config.load_alpha),
            config,
            bg_history: Vec::new(),
            bg_fused: Vec::new(),
            quality: DecisionQuality::default(),
        }
    }

    /// `O_p` samples rejected as outliers so far.
    pub fn outliers_rejected(&self) -> usize {
        self.quality.outliers_rejected
    }

    /// The fused (cleaned) snapshot the inner strategy would be given.
    pub fn fuse(&mut self, stats: &LbStats) -> LbStats {
        // A change in core count (PE failure compaction re-indexes cores)
        // invalidates the per-core histories.
        if self.bg_history.len() != stats.num_pes {
            self.bg_history = vec![VecDeque::new(); stats.num_pes];
            self.bg_fused = vec![None; stats.num_pes];
        }

        let mut fused_stats = stats.clone();
        for p in 0..stats.num_pes {
            let sample = stats.bg_load[p];
            let conf = stats.confidence_of(p);
            let hist = &mut self.bg_history[p];

            let mut accept = true;
            if conf < self.config.trust_confidence && hist.len() >= 3 {
                let median = median_of(hist.iter().copied());
                let mad = median_of(hist.iter().map(|x| (x - median).abs()));
                let band = self.config.outlier_mad * mad.max(0.05 * median.abs() + 1e-6);
                if (sample - median).abs() > band {
                    accept = false;
                    self.quality.outliers_rejected += 1;
                }
            }
            if accept {
                hist.push_back(sample);
                while hist.len() > self.config.history {
                    hist.pop_front();
                }
            }

            let median_recent = if hist.is_empty() { sample } else { median_of(hist.iter().copied()) };
            let fused = match self.bg_fused[p] {
                None => median_recent,
                Some(prev) => {
                    let w = self.config.ema_alpha * conf;
                    (1.0 - w) * prev + w * median_recent
                }
            };
            self.bg_fused[p] = Some(fused);
            fused_stats.bg_load[p] = fused.max(0.0);
        }

        // Confidence-weighted task loads through the persistence predictor.
        for t in &mut fused_stats.tasks {
            let conf = stats.confidence_of(t.pe);
            let blended = match self.predictor.predict(t.id) {
                Some(prev) => conf * t.load + (1.0 - conf) * prev,
                None => t.load,
            };
            self.predictor.observe(t.id, blended);
            t.load = self.predictor.predict(t.id).expect("just observed");
        }
        let live = fused_stats.tasks.iter().map(|t| t.id).collect();
        self.predictor.retain_tasks(&live);

        fused_stats.validate();
        fused_stats
    }
}

fn median_of(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

impl<S: LbStrategy> LbStrategy for RobustLb<S> {
    fn name(&self) -> &'static str {
        "Robust"
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        let fused = self.fuse(stats);
        self.inner.plan(&fused)
    }

    fn decision_quality(&self) -> DecisionQuality {
        let mut q = self.inner.decision_quality();
        q.merge(&self.quality);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudRefineLb;
    use crate::db::{TaskId, TaskInfo};
    use crate::strategy::NoLb;

    fn snapshot(bg: &[f64], conf: Option<&[f64]>) -> LbStats {
        let mut s = LbStats::new(bg.len());
        for i in 0..(4 * bg.len()) as u64 {
            s.tasks.push(TaskInfo {
                id: TaskId(i),
                pe: (i as usize) % bg.len(),
                load: 0.25,
                bytes: 64,
            });
        }
        s.bg_load = bg.to_vec();
        if let Some(c) = conf {
            s.confidence = c.to_vec();
        }
        s
    }

    #[test]
    fn clean_steady_signal_passes_through() {
        let mut lb = RobustLb::new(NoLb, RobustConfig::default());
        for _ in 0..5 {
            lb.fuse(&snapshot(&[2.0, 0.0], None));
        }
        let fused = lb.fuse(&snapshot(&[2.0, 0.0], None));
        assert!((fused.bg_load[0] - 2.0).abs() < 1e-9, "{:?}", fused.bg_load);
        assert!(fused.bg_load[1].abs() < 1e-9);
        assert_eq!(lb.outliers_rejected(), 0);
    }

    #[test]
    fn low_confidence_spike_is_rejected() {
        let mut lb = RobustLb::new(NoLb, RobustConfig::default());
        for _ in 0..4 {
            lb.fuse(&snapshot(&[1.0], None));
        }
        // A stale snapshot fabricates a huge O_p with near-zero confidence.
        let fused = lb.fuse(&snapshot(&[9.0], Some(&[0.05])));
        assert_eq!(lb.outliers_rejected(), 1);
        assert!(fused.bg_load[0] < 1.5, "spike must not pass: {:?}", fused.bg_load);
    }

    #[test]
    fn high_confidence_step_change_is_tracked() {
        let mut lb = RobustLb::new(NoLb, RobustConfig::default());
        for _ in 0..4 {
            lb.fuse(&snapshot(&[0.0], None));
        }
        // Interference genuinely arrives, counters are clean: follow it.
        for _ in 0..5 {
            lb.fuse(&snapshot(&[2.0], None));
        }
        let fused = lb.fuse(&snapshot(&[2.0], None));
        assert_eq!(lb.outliers_rejected(), 0);
        assert!(fused.bg_load[0] > 1.5, "must converge to the new level: {:?}", fused.bg_load);
    }

    #[test]
    fn distrusted_windows_barely_move_the_estimate() {
        let mut lb = RobustLb::new(NoLb, RobustConfig::default());
        for _ in 0..4 {
            lb.fuse(&snapshot(&[1.0], None));
        }
        // Mildly-off readings with rock-bottom confidence: within the MAD
        // band (so not "outliers") but the EWMA weight collapses.
        let fused = lb.fuse(&snapshot(&[1.04], Some(&[0.01])));
        assert!((fused.bg_load[0] - 1.0).abs() < 0.01, "{:?}", fused.bg_load);
    }

    #[test]
    fn task_loads_are_confidence_blended_and_gced() {
        let mut lb = RobustLb::new(NoLb, RobustConfig::default());
        let mut s = LbStats::new(1);
        s.tasks.push(TaskInfo { id: TaskId(0), pe: 0, load: 1.0, bytes: 8 });
        s.bg_load = vec![0.0];
        lb.fuse(&s);
        // Same task, wildly different measured load on a distrusted core:
        // the blend should stay near history.
        s.tasks[0].load = 10.0;
        s.confidence = vec![0.0];
        let fused = lb.fuse(&s);
        assert!((fused.tasks[0].load - 1.0).abs() < 1e-9, "{:?}", fused.tasks[0]);
        // Replace the task set: the predictor must drop the dead entry.
        s.tasks[0] = TaskInfo { id: TaskId(7), pe: 0, load: 2.0, bytes: 8 };
        s.confidence = vec![];
        lb.fuse(&s);
        assert_eq!(lb.predictor.predict(TaskId(0)), None, "stale predictor entry leaked");
        assert!(lb.predictor.predict(TaskId(7)).is_some());
    }

    #[test]
    fn pe_count_change_resets_history() {
        let mut lb = RobustLb::new(NoLb, RobustConfig::default());
        for _ in 0..5 {
            lb.fuse(&snapshot(&[3.0, 0.0], None));
        }
        // A core died; stats arrive compacted to one PE. Old per-core
        // history must not bleed into the re-indexed cores.
        let fused = lb.fuse(&snapshot(&[0.5], None));
        assert!((fused.bg_load[0] - 0.5).abs() < 1e-9, "{:?}", fused.bg_load);
    }

    #[test]
    fn wrapped_cloudrefine_still_balances_clean_telemetry() {
        let mut guarded = RobustLb::new(CloudRefineLb::default(), RobustConfig::default());
        let mut plain = CloudRefineLb::default();
        let s = snapshot(&[2.0, 0.0, 0.0, 0.0], None);
        // Warm the estimator so the fused O_p matches the measurement.
        for _ in 0..5 {
            guarded.fuse(&s);
        }
        let a = guarded.plan(&s);
        let b = plain.plan(&s);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len(), "clean telemetry must not change the plan size");
    }
}
