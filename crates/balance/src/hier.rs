//! Hierarchical CloudRefine — two-level refinement for very large
//! clusters.
//!
//! Centralized refinement is the first scalability wall of cloud load
//! balancers: one strategy invocation walks every task on every core.
//! Following the route Charm++ took at scale (Zheng et al., *Periodic
//! Hierarchical Load Balancing for Large Supercomputers*), this arm
//! splits the cluster into nodes of [`HierCloudRefineLb::cores_per_node`]
//! consecutive cores and balances in two levels:
//!
//! 1. **Intra-node**: the paper's Algorithm 1 ([`crate::cloud`]) runs
//!    independently per node over that node's chares only, against the
//!    node-local average. Most imbalance (one interfered core among its
//!    neighbors) is fixed here, with migrations that never cross a node
//!    boundary.
//! 2. **Cross-node surplus exchange**: nodes exchange only per-node load
//!    aggregates. A node whose eligible-core average exceeds the global
//!    `T_avg` by more than `ε` donates its largest fitting task to the
//!    least-loaded eligible core of the lightest under-loaded node,
//!    until every node average sits inside the band. Only the surplus
//!    that node-local refinement cannot absorb travels.
//!
//! Cores under a spot preemption notice are globally force-drained first
//! (they may sit on a node whose *every* core is doomed, which node-local
//! refinement alone could never empty). The final plan is emitted as one
//! migration per task whose placement changed, `from` its original core —
//! so a chare that hops doomed → intra-node → cross-node still appears
//! exactly once, as [`crate::strategy::validate_plan`] requires.

use crate::cloud::{refine_plan, HeapEntry, MinEntry};
use crate::db::{LbStats, TaskId, TaskInfo};
use crate::strategy::{LbStrategy, Migration};
use std::collections::{BinaryHeap, HashMap};

/// Two-level (node, then cluster) interference-aware refinement.
#[derive(Debug, Clone)]
pub struct HierCloudRefineLb {
    /// Tolerance `ε` as a fraction of the relevant average load (node
    /// average intra-node, global `T_avg` cross-node).
    pub epsilon_frac: f64,
    /// Include the background term `O_p`, as in [`crate::cloud`].
    pub account_bg: bool,
    /// Consecutive cores per node. The repo's cluster convention is 4
    /// (the paper's testbed nodes); a trailing partial node is allowed.
    pub cores_per_node: usize,
}

impl Default for HierCloudRefineLb {
    fn default() -> Self {
        HierCloudRefineLb { epsilon_frac: 0.05, account_bg: true, cores_per_node: 4 }
    }
}

impl HierCloudRefineLb {
    /// Hierarchical configuration with an explicit tolerance fraction.
    pub fn with_epsilon(epsilon_frac: f64) -> Self {
        assert!(epsilon_frac >= 0.0 && epsilon_frac.is_finite());
        HierCloudRefineLb { epsilon_frac, ..Default::default() }
    }
}

impl LbStrategy for HierCloudRefineLb {
    fn name(&self) -> &'static str {
        "HierCloudRefineLB"
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        stats.validate();
        let p = stats.num_pes;
        if p == 0 || stats.tasks.is_empty() {
            return Vec::new();
        }
        let cpn = self.cores_per_node.max(1);
        let nodes = p.div_ceil(cpn);
        let node_of = |pe: usize| pe / cpn;

        let doomed: Vec<bool> = (0..p).map(|pe| stats.doomed_of(pe)).collect();
        let eligible_cnt = doomed.iter().filter(|&&d| !d).count();
        if eligible_cnt == 0 {
            return Vec::new(); // nowhere anything could go
        }

        // Working state: task index → current core, and per-core loads
        // (task sums plus O_p when interference-aware).
        let mut cur: Vec<usize> = stats.tasks.iter().map(|t| t.pe).collect();
        let mut loads = stats.task_loads();
        if self.account_bg {
            for (l, o) in loads.iter_mut().zip(&stats.bg_load) {
                *l += o;
            }
        }
        let idx_of: HashMap<TaskId, usize> =
            stats.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();

        // Phase A (elastic membership): globally force-drain doomed cores
        // onto the least-loaded eligible core, wherever it is — a fully
        // doomed node has no local refuge, so this cannot be left to the
        // per-node pass. Lazy min-heap receiver choice, as in the flat
        // engine's phase 0.
        if doomed.iter().any(|&d| d) {
            let mut on: Vec<Vec<(f64, TaskId, usize)>> = vec![Vec::new(); p];
            for (i, t) in stats.tasks.iter().enumerate() {
                if doomed[t.pe] {
                    on[t.pe].push((t.load, t.id, i));
                }
            }
            for list in &mut on {
                list.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            }
            let mut recv: BinaryHeap<MinEntry> = (0..p)
                .filter(|&pe| !doomed[pe])
                .map(|pe| MinEntry { load: loads[pe], pe })
                .collect();
            for pe in 0..p {
                if !doomed[pe] {
                    continue;
                }
                while let Some((task_load, _id, i)) = on[pe].pop() {
                    let dest = loop {
                        let e = recv.peek().expect("eligible nonempty");
                        if e.load.to_bits() == loads[e.pe].to_bits() {
                            break e.pe;
                        }
                        recv.pop();
                    };
                    cur[i] = dest;
                    loads[pe] -= task_load;
                    loads[dest] += task_load;
                    recv.push(MinEntry { load: loads[dest], pe: dest });
                }
            }
        }

        // Phase B: node-local refinement. Each node sees only its own
        // cores and chares, remapped to local indices; one scratch
        // sub-snapshot is reused across all nodes.
        let mut node_tasks: Vec<Vec<usize>> = vec![Vec::new(); nodes];
        for (i, &pe) in cur.iter().enumerate() {
            node_tasks[node_of(pe)].push(i);
        }
        let mut sub = LbStats::new(0);
        for (node, members) in node_tasks.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let lo = node * cpn;
            let hi = ((node + 1) * cpn).min(p);
            sub.num_pes = hi - lo;
            sub.tasks.clear();
            for &i in members {
                let t = &stats.tasks[i];
                sub.tasks.push(TaskInfo { id: t.id, pe: cur[i] - lo, load: t.load, bytes: t.bytes });
            }
            sub.bg_load.clear();
            sub.bg_load.extend_from_slice(&stats.bg_load[lo..hi]);
            sub.doomed.clear();
            if !stats.doomed.is_empty() {
                sub.doomed.extend_from_slice(&stats.doomed[lo..hi]);
            }
            sub.fresh.clear();
            if !stats.fresh.is_empty() {
                sub.fresh.extend_from_slice(&stats.fresh[lo..hi]);
            }
            for m in refine_plan(&sub, self.epsilon_frac, self.account_bg) {
                let i = idx_of[&m.task];
                let t_load = stats.tasks[i].load;
                cur[i] = lo + m.to;
                loads[lo + m.from] -= t_load;
                loads[lo + m.to] += t_load;
            }
        }

        // Phase C: cross-node surplus exchange. Each node is summarized
        // by two scalar aggregates — its heaviest and lightest eligible
        // core load. A node donates while its heaviest core sits above
        // `T_avg + ε` (the surplus node-local refinement could not
        // absorb), into the lightest core of the node whose lightest
        // core is lowest. The per-core band check matches Algorithm 1,
        // so the converged quality matches flat CloudRefine; only the
        // donor/receiver *choice* is made on node aggregates.
        let t_avg = (0..p).filter(|&pe| !doomed[pe]).map(|pe| loads[pe]).sum::<f64>()
            / eligible_cnt as f64;
        let eps = self.epsilon_frac * t_avg;
        let is_heavy = |load: f64| load - t_avg > eps;
        let is_light = |load: f64| t_avg - load > eps;

        // Heaviest / lightest eligible core of a node (ties: lowest pe).
        let node_max = |loads: &[f64], n: usize| -> Option<(f64, usize)> {
            let (lo, hi) = (n * cpn, ((n + 1) * cpn).min(p));
            let mut best: Option<(f64, usize)> = None;
            for pe in lo..hi {
                if !doomed[pe] && best.is_none_or(|(l, _)| loads[pe] > l) {
                    best = Some((loads[pe], pe));
                }
            }
            best
        };
        let node_min = |loads: &[f64], n: usize| -> Option<(f64, usize)> {
            let (lo, hi) = (n * cpn, ((n + 1) * cpn).min(p));
            let mut best: Option<(f64, usize)> = None;
            for pe in lo..hi {
                if !doomed[pe] && best.is_none_or(|(l, _)| loads[pe] < l) {
                    best = Some((loads[pe], pe));
                }
            }
            best
        };
        let mut node_fresh = vec![false; nodes];
        for pe in 0..p {
            if !doomed[pe] && stats.fresh_of(pe) {
                node_fresh[node_of(pe)] = true;
            }
        }

        // Lazy heaps over the node aggregates (`pe` carries the node
        // index); stale entries are detected by a bit-exact compare
        // against the recomputed aggregate.
        let mut overheap: BinaryHeap<HeapEntry> = BinaryHeap::new();
        let mut underheap: BinaryHeap<MinEntry> = BinaryHeap::new();
        let mut in_under = vec![false; nodes];
        for node in 0..nodes {
            let Some((max, _)) = node_max(&loads, node) else { continue };
            let (min, _) = node_min(&loads, node).expect("max implies min");
            if is_heavy(max) {
                overheap.push(HeapEntry { load: max, pe: node });
            }
            if is_light(min) || node_fresh[node] {
                underheap.push(MinEntry { load: min, pe: node });
                in_under[node] = true;
            }
        }

        // Donor task pools — one sorted (load, id) list per local core,
        // built lazily the first time a node donates.
        type CorePools = Vec<Vec<(f64, TaskId)>>;
        let mut pool: Vec<Option<CorePools>> = vec![None; nodes];

        while let Some(HeapEntry { load: max, pe: dn }) = overheap.pop() {
            let cur_max = node_max(&loads, dn).expect("donor node has cores").0;
            if max.to_bits() != cur_max.to_bits() {
                if is_heavy(cur_max) {
                    overheap.push(HeapEntry { load: cur_max, pe: dn });
                }
                continue;
            }
            let rn = loop {
                match underheap.peek() {
                    None => break None,
                    Some(e) => {
                        let min = node_min(&loads, e.pe).expect("under node has cores").0;
                        if !in_under[e.pe] || e.load.to_bits() != min.to_bits() {
                            underheap.pop();
                        } else {
                            break Some(e.pe);
                        }
                    }
                }
            };
            let Some(rn) = rn else {
                break; // no node can receive
            };

            // The lightest node's lightest eligible core receives.
            let recv = node_min(&loads, rn).expect("under node has cores").1;
            let headroom = t_avg + eps - loads[recv];

            let dlo = dn * cpn;
            let pools = pool[dn].get_or_insert_with(|| {
                let width = ((dn + 1) * cpn).min(p) - dlo;
                let mut v: Vec<Vec<(f64, TaskId)>> = vec![Vec::new(); width];
                for &i in &node_tasks[dn] {
                    v[cur[i] - dlo].push((stats.tasks[i].load, stats.tasks[i].id));
                }
                for list in &mut v {
                    list.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                }
                v
            });
            // Donor cores above the band, in load-descending order
            // (ties: lowest core); take the largest fitting task off the
            // heaviest overloaded core that has one.
            let mut order: Vec<usize> = (0..pools.len())
                .filter(|&c| !doomed[dlo + c] && is_heavy(loads[dlo + c]))
                .collect();
            order.sort_by(|&a, &b| {
                loads[dlo + b].total_cmp(&loads[dlo + a]).then_with(|| a.cmp(&b))
            });
            let mut picked = None;
            for &c in &order {
                let cut = pools[c].partition_point(|&(l, _)| l <= headroom);
                if cut > 0 {
                    picked = Some((c, cut - 1));
                    break;
                }
            }
            let Some((c, at)) = picked else {
                // Nothing on the donor's overloaded cores fits the best
                // receiver: the node cannot be improved; drop it to
                // guarantee termination.
                continue;
            };
            let (task_load, task_id) = pools[c].remove(at);
            let from_pe = dlo + c;

            let i = idx_of[&task_id];
            cur[i] = recv;
            loads[from_pe] -= task_load;
            loads[recv] += task_load;
            // Receiver bookkeeping: the moved task is now donatable from
            // `recv` if its node ever turns donor — keep the pool in
            // sync when one exists.
            if let Some(rpools) = pool[rn].as_mut() {
                let list = &mut rpools[recv - rn * cpn];
                let at = list
                    .partition_point(|&(l, id)| l < task_load || (l == task_load && id < task_id));
                list.insert(at, (task_load, task_id));
            }
            node_tasks[rn].push(i);

            if let Some((m, _)) = node_max(&loads, dn) {
                if is_heavy(m) {
                    overheap.push(HeapEntry { load: m, pe: dn });
                }
            }
            if let Some((m, _)) = node_min(&loads, dn) {
                if is_light(m) && !in_under[dn] {
                    underheap.push(MinEntry { load: m, pe: dn });
                    in_under[dn] = true;
                }
            }
            let rmin = node_min(&loads, rn).expect("under node has cores").0;
            if !is_light(rmin) {
                in_under[rn] = false;
            } else {
                underheap.push(MinEntry { load: rmin, pe: rn });
            }
        }

        // Emit the net placement change, one migration per moved task in
        // database order, `from` the task's *original* core.
        let mut plan = Vec::new();
        for (i, t) in stats.tasks.iter().enumerate() {
            if cur[i] != t.pe {
                plan.push(Migration { task: t.id, from: t.pe, to: cur[i] });
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudRefineLb;
    use crate::strategy::{apply_plan, validate_plan};

    fn stats(num_pes: usize, tasks: &[(u64, usize, f64)], bg: &[f64]) -> LbStats {
        let mut s = LbStats::new(num_pes);
        s.tasks = tasks
            .iter()
            .map(|&(id, pe, load)| TaskInfo { id: TaskId(id), pe, load, bytes: 4096 })
            .collect();
        s.bg_load = bg.to_vec();
        s
    }

    /// Paper-shaped snapshot: 8 cores (2 nodes of 4), 8 chares of 0.25 s
    /// per core, interference of 2.0 s on core 0.
    fn interfered8() -> LbStats {
        let tasks: Vec<(u64, usize, f64)> =
            (0..64).map(|i| (i, (i % 8) as usize, 0.25)).collect();
        let mut bg = vec![0.0; 8];
        bg[0] = 2.0;
        stats(8, &tasks, &bg)
    }

    fn max_load(s: &LbStats) -> f64 {
        s.total_loads().into_iter().fold(0.0, f64::max)
    }

    #[test]
    fn sheds_load_and_matches_flat_quality() {
        let s = interfered8();
        let plan = HierCloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(!plan.is_empty());
        // Intra-node refinement sheds core 0 onto its node; the
        // cross-node pass then exports the node's surplus — so every
        // donation originates on the interfered node.
        assert!(plan.iter().all(|m| m.from < 4), "only the interfered node donates: {plan:?}");
        let flat = CloudRefineLb::default().plan(&s);
        let (h, f) =
            (max_load(&apply_plan(&s, &plan)), max_load(&apply_plan(&s, &flat)));
        assert!(h <= f * 1.05 + 1e-9, "hier {h} vs flat {f}");
    }

    #[test]
    fn single_node_degenerates_to_flat_cloudrefine() {
        // One node of 4 cores: phase C has nothing to exchange, so the
        // plan is flat CloudRefine's, re-emitted in task order.
        let tasks: Vec<(u64, usize, f64)> =
            (0..32).map(|i| (i, (i % 4) as usize, 0.25)).collect();
        let s = stats(4, &tasks, &[2.0, 0.0, 0.0, 0.0]);
        let mut hier = HierCloudRefineLb::default().plan(&s);
        let mut flat = CloudRefineLb::default().plan(&s);
        let key = |m: &Migration| (m.task, m.from, m.to);
        hier.sort_by_key(key);
        flat.sort_by_key(key);
        assert_eq!(hier, flat);
    }

    #[test]
    fn cross_node_surplus_travels() {
        // Node 0 (cores 0–3) hosts everything; node 1 (cores 4–7) is
        // idle. Intra-node refinement cannot fix that — phase C must.
        let tasks: Vec<(u64, usize, f64)> =
            (0..32).map(|i| (i, (i % 4) as usize, 0.5)).collect();
        let s = stats(8, &tasks, &[0.0; 8]);
        let plan = HierCloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(plan.iter().any(|m| m.to >= 4), "no cross-node move: {plan:?}");
        let after = apply_plan(&s, &plan);
        let t_avg = after.t_avg();
        for (pe, l) in after.total_loads().iter().enumerate() {
            assert!(l - t_avg <= 0.05 * t_avg + 0.5 + 1e-9, "pe{pe} load {l} vs avg {t_avg}");
        }
    }

    #[test]
    fn doomed_node_is_fully_drained_across_nodes() {
        // Both cores of node 0 are doomed: node-local refinement has no
        // refuge, the drain must cross nodes.
        let tasks: Vec<(u64, usize, f64)> =
            (0..8).map(|i| (i, (i % 4) as usize, 0.5)).collect();
        let mut s = stats(4, &tasks, &[0.0; 4]);
        s.doomed = vec![true, true, false, false];
        let mut lb = HierCloudRefineLb { cores_per_node: 2, ..Default::default() };
        let plan = lb.plan(&s);
        validate_plan(&s, &plan);
        let after = apply_plan(&s, &plan);
        for t in &after.tasks {
            assert!(t.pe >= 2, "task {:?} left on doomed core {}", t.id, t.pe);
        }
    }

    #[test]
    fn doomed_cores_never_receive() {
        let tasks: Vec<(u64, usize, f64)> =
            (0..24).map(|i| (i, (i % 3) as usize, 0.5)).collect();
        let mut s = stats(8, &tasks, &[0.0; 8]);
        s.doomed = vec![false, false, false, false, true, true, false, false];
        let plan = HierCloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(plan.iter().all(|m| m.to != 4 && m.to != 5), "{plan:?}");
    }

    #[test]
    fn fresh_node_is_eagerly_refilled() {
        // Node 1 just warmed up, empty; node 0 is mildly overloaded.
        let tasks: Vec<(u64, usize, f64)> =
            (0..16).map(|i| (i, (i % 4) as usize, 0.25)).collect();
        let mut s = stats(8, &tasks, &[0.0; 8]);
        s.fresh = vec![false, false, false, false, true, true, true, true];
        let plan = HierCloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(plan.iter().any(|m| m.to >= 4), "fresh node not refilled: {plan:?}");
    }

    #[test]
    fn deterministic_plans() {
        let s = interfered8();
        assert_eq!(
            HierCloudRefineLb::default().plan(&s),
            HierCloudRefineLb::default().plan(&s)
        );
    }

    #[test]
    fn empty_and_trivial_inputs() {
        assert!(HierCloudRefineLb::default().plan(&LbStats::new(0)).is_empty());
        assert!(HierCloudRefineLb::default().plan(&LbStats::new(8)).is_empty());
        let mut s = stats(2, &[(0, 0, 1.0), (1, 1, 1.0)], &[0.0, 0.0]);
        s.doomed = vec![true, true];
        assert!(HierCloudRefineLb::default().plan(&s).is_empty());
    }

    #[test]
    fn balanced_input_produces_empty_plan() {
        let tasks: Vec<(u64, usize, f64)> =
            (0..32).map(|i| (i, (i % 8) as usize, 0.25)).collect();
        let s = stats(8, &tasks, &[0.0; 8]);
        assert!(HierCloudRefineLb::default().plan(&s).is_empty());
    }

    #[test]
    fn partial_trailing_node_is_handled() {
        // 6 cores with cores_per_node = 4: node 1 has only 2 cores.
        let tasks: Vec<(u64, usize, f64)> =
            (0..24).map(|i| (i, (i % 2) as usize, 0.5)).collect();
        let s = stats(6, &tasks, &[0.0; 6]);
        let plan = HierCloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        let after = apply_plan(&s, &plan);
        let t_avg = after.t_avg();
        let max = after.total_loads().into_iter().fold(0.0, f64::max);
        assert!(max - t_avg <= 0.05 * t_avg + 0.5 + 1e-9, "max {max} vs avg {t_avg}");
    }
}
