#![warn(missing_docs)]
//! Load-balancing strategies for `cloudlb`.
//!
//! This crate is a pure-algorithm library: it consumes an [`LbStats`]
//! snapshot (per-task measured loads, per-core background loads, the
//! current task→core mapping) and produces a migration plan. It knows
//! nothing about chares, messages or simulators, which keeps the paper's
//! Algorithm 1 testable in isolation and reusable by both executors.
//!
//! Strategies:
//! * [`NoLb`] — the paper's `noLB` baseline.
//! * [`GreedyLb`] — classic Charm++ GreedyLB (largest task to least-loaded
//!   core, from scratch); high-churn baseline.
//! * [`RefineLb`] — classic refinement balancing that only sees load
//!   *internal* to the application (what existed before the paper).
//! * [`CloudRefineLb`] — the paper's contribution (its Algorithm 1):
//!   refinement that also accounts for the interference term `O_p`.
//! * [`GainGatedLb`] — the paper's future-work variant: compute the plan,
//!   but commit it only when the predicted gain offsets migration cost.
//! * [`CommRefineLb`] — an extension: interference-aware refinement that
//!   breaks receiver ties by communication affinity (fewer cross-node
//!   ghost messages on a virtualized network).
//! * [`HierCloudRefineLb`] — two-level CloudRefine for very large
//!   clusters: per-node refinement over local chares, then a cross-node
//!   exchange of only the surplus the node averages cannot absorb.
//! * [`RobustLb`] — robust `O_p` estimation (median-of-windows + EWMA
//!   fusion, confidence-weighted loads, outlier rejection) in front of any
//!   strategy, for corrupted cloud telemetry.
//! * [`HysteresisLb`] — anti-thrash gate: suppresses plans whose gain is
//!   inside the telemetry noise floor and damps A→B→A oscillation.

pub mod cloud;
pub mod comm;
pub mod db;
pub mod gated;
pub mod greedy;
pub mod hier;
pub mod hysteresis;
pub mod metrics;
pub mod predict;
pub mod refine;
pub mod robust;
pub mod sanitize;
pub mod strategy;

pub use cloud::CloudRefineLb;
pub use comm::CommRefineLb;
pub use db::{CommEdge, LbStats, TaskId, TaskInfo};
pub use gated::{GainGatedLb, GateConfig};
pub use greedy::GreedyLb;
pub use hier::HierCloudRefineLb;
pub use hysteresis::{HysteresisConfig, HysteresisLb};
pub use metrics::{ImbalanceMetrics, PlanMetrics};
pub use predict::{ExpAverage, LastValue, Predictor};
pub use refine::RefineLb;
pub use robust::{RobustConfig, RobustLb};
pub use sanitize::{sanitize_plan, SanitizedPlan};
pub use strategy::{DecisionQuality, LbStrategy, Migration, NoLb};
