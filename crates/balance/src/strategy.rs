//! Strategy trait, migration plans, and the `noLB` baseline.

use crate::db::{LbStats, TaskId};
use serde::{Deserialize, Serialize};

/// One planned object migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Migration {
    /// Task to move.
    pub task: TaskId,
    /// Core it currently lives on.
    pub from: usize,
    /// Destination core.
    pub to: usize,
}

/// Counters describing *how* a strategy arrived at its plans — populated
/// by the robust-telemetry wrappers ([`crate::robust`], [`crate::hysteresis`])
/// and zero for plain strategies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionQuality {
    /// Migrations planned by the inner strategy but suppressed because
    /// their predicted gain sat inside the telemetry noise floor.
    pub suppressed: usize,
    /// A→B→A oscillations detected (and blocked) across LB steps.
    pub oscillations: usize,
    /// `O_p` samples rejected as outliers by the robust estimator.
    pub outliers_rejected: usize,
}

impl DecisionQuality {
    /// Accumulate another strategy layer's counters into this one.
    pub fn merge(&mut self, other: &DecisionQuality) {
        self.suppressed += other.suppressed;
        self.oscillations += other.oscillations;
        self.outliers_rejected += other.outliers_rejected;
    }
}

/// A load-balancing strategy: plans migrations from a database snapshot.
///
/// Strategies are pure planners — committing the plan (actually moving
/// objects) is the runtime's job, mirroring the Charm++ split between the
/// LB strategy and the LB framework. Implementations must be
/// deterministic: the same snapshot yields the same plan.
pub trait LbStrategy: Send {
    /// Human-readable name (used in reports and registries).
    fn name(&self) -> &'static str;

    /// Plan migrations for the snapshot. The returned plan must be valid
    /// per [`validate_plan`].
    fn plan(&mut self, stats: &LbStats) -> Vec<Migration>;

    /// Decision-quality counters accumulated over the strategy's lifetime.
    /// Wrapper strategies merge their inner strategy's counters in; plain
    /// strategies report zeros.
    fn decision_quality(&self) -> DecisionQuality {
        DecisionQuality::default()
    }
}

/// The `noLB` baseline: never migrates.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLb;

impl LbStrategy for NoLb {
    fn name(&self) -> &'static str {
        "NoLB"
    }

    fn plan(&mut self, _stats: &LbStats) -> Vec<Migration> {
        Vec::new()
    }
}

/// Check a plan against a snapshot: every migrated task exists, `from`
/// matches its current core, destinations are in range, and no task is
/// migrated twice. Panics with a description on violation.
pub fn validate_plan(stats: &LbStats, plan: &[Migration]) {
    if plan.is_empty() {
        return;
    }
    // One id→index map up front keeps validation O(tasks + plan); a
    // per-migration linear `task()` scan is quadratic at 1M chares.
    let index: std::collections::HashMap<TaskId, usize> =
        stats.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
    let mut seen = std::collections::HashSet::new();
    for m in plan {
        assert!(seen.insert(m.task), "task {:?} migrated twice", m.task);
        let t = index
            .get(&m.task)
            .map(|&i| &stats.tasks[i])
            .unwrap_or_else(|| panic!("plan references unknown task {:?}", m.task));
        assert_eq!(t.pe, m.from, "task {:?} is on pe {}, plan says {}", m.task, t.pe, m.from);
        assert!(m.to < stats.num_pes, "destination pe {} out of range", m.to);
        assert_ne!(m.from, m.to, "no-op migration of {:?}", m.task);
    }
}

/// Apply a plan to a snapshot, producing the predicted post-LB database.
pub fn apply_plan(stats: &LbStats, plan: &[Migration]) -> LbStats {
    validate_plan(stats, plan);
    let mut out = stats.clone();
    if plan.is_empty() {
        return out;
    }
    let index: std::collections::HashMap<TaskId, usize> =
        out.tasks.iter().enumerate().map(|(i, t)| (t.id, i)).collect();
    for m in plan {
        if let Some(&i) = index.get(&m.task) {
            out.tasks[i].pe = m.to;
        }
    }
    out
}

/// Construct a strategy by name, for config-driven harnesses. Recognized:
/// `nolb`, `greedy`, `greedybg`, `refine`, `cloudrefine`, `commrefine`,
/// `hiercloudrefine` (two-level CloudRefine: per-node refinement plus
/// cross-node surplus exchange, for very large clusters),
/// `gatedcloudrefine` (CloudRefine behind the §VI migration cost/benefit
/// gate), `hysteresiscloudrefine` (CloudRefine behind the anti-thrash gate)
/// and `robustcloudrefine` (the full guarded stack: robust estimation
/// feeding the hysteresis gate feeding CloudRefine), case-insensitive.
pub fn by_name(name: &str) -> Option<Box<dyn LbStrategy>> {
    match name.to_ascii_lowercase().as_str() {
        "nolb" => Some(Box::new(NoLb)),
        "greedy" => Some(Box::new(crate::greedy::GreedyLb::classic())),
        "greedybg" => Some(Box::new(crate::greedy::GreedyLb::interference_aware())),
        "refine" => Some(Box::new(crate::refine::RefineLb::default())),
        "cloudrefine" => Some(Box::new(crate::cloud::CloudRefineLb::default())),
        "commrefine" => Some(Box::new(crate::comm::CommRefineLb::default())),
        "hiercloudrefine" => Some(Box::new(crate::hier::HierCloudRefineLb::default())),
        "gatedcloudrefine" => Some(Box::new(crate::gated::GainGatedLb::new(
            crate::cloud::CloudRefineLb::default(),
            crate::gated::GateConfig::default(),
        ))),
        "hysteresiscloudrefine" => Some(Box::new(crate::hysteresis::HysteresisLb::new(
            crate::cloud::CloudRefineLb::default(),
            crate::hysteresis::HysteresisConfig::default(),
        ))),
        "robustcloudrefine" => Some(Box::new(crate::robust::RobustLb::new(
            crate::hysteresis::HysteresisLb::new(
                crate::cloud::CloudRefineLb::default(),
                crate::hysteresis::HysteresisConfig::default(),
            ),
            crate::robust::RobustConfig::default(),
        ))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TaskInfo;

    fn stats() -> LbStats {
        let mut s = LbStats::new(2);
        s.tasks.push(TaskInfo { id: TaskId(1), pe: 0, load: 1.0, bytes: 8 });
        s.tasks.push(TaskInfo { id: TaskId(2), pe: 0, load: 1.0, bytes: 8 });
        s
    }

    #[test]
    fn nolb_never_migrates() {
        let mut lb = NoLb;
        assert!(lb.plan(&stats()).is_empty());
        assert_eq!(lb.name(), "NoLB");
    }

    #[test]
    fn apply_plan_moves_tasks() {
        let s = stats();
        let plan = vec![Migration { task: TaskId(2), from: 0, to: 1 }];
        let after = apply_plan(&s, &plan);
        assert_eq!(after.task(TaskId(2)).unwrap().pe, 1);
        assert_eq!(after.task(TaskId(1)).unwrap().pe, 0);
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn validate_rejects_unknown_task() {
        validate_plan(&stats(), &[Migration { task: TaskId(99), from: 0, to: 1 }]);
    }

    #[test]
    #[should_panic(expected = "migrated twice")]
    fn validate_rejects_duplicate_migration() {
        let plan = vec![
            Migration { task: TaskId(1), from: 0, to: 1 },
            Migration { task: TaskId(1), from: 0, to: 1 },
        ];
        validate_plan(&stats(), &plan);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_bad_destination() {
        validate_plan(&stats(), &[Migration { task: TaskId(1), from: 0, to: 9 }]);
    }

    #[test]
    #[should_panic(expected = "no-op migration")]
    fn validate_rejects_noop() {
        validate_plan(&stats(), &[Migration { task: TaskId(1), from: 0, to: 0 }]);
    }

    #[test]
    fn registry_resolves_known_names() {
        for n in [
            "nolb",
            "greedy",
            "greedybg",
            "refine",
            "CloudRefine",
            "commrefine",
            "HierCloudRefine",
            "gatedcloudrefine",
            "HysteresisCloudRefine",
            "robustcloudrefine",
        ] {
            assert!(by_name(n).is_some(), "{n} not found");
        }
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn decision_quality_defaults_to_zero_and_merges() {
        assert_eq!(NoLb.decision_quality(), DecisionQuality::default());
        let mut a = DecisionQuality { suppressed: 2, oscillations: 1, outliers_rejected: 0 };
        a.merge(&DecisionQuality { suppressed: 1, oscillations: 0, outliers_rejected: 5 });
        assert_eq!(a, DecisionQuality { suppressed: 3, oscillations: 1, outliers_rejected: 5 });
    }
}
