//! The paper's Algorithm 1: *Refinement Load Balancing for VM Interference*.
//!
//! Variable glossary (paper Table I):
//!
//! | Variable   | Description                                          |
//! |------------|------------------------------------------------------|
//! | `p`        | number of cores                                      |
//! | `T_avg`    | average execution time per core (Eq. 1)              |
//! | `t_i^p`    | CPU time of task `i` assigned to core `p`            |
//! | `m_i^k`    | core to which task `i` is assigned during step `k`   |
//! | `overheap` | heap of overloaded cores                             |
//! | `O_p`      | background load for core `p` (Eq. 2)                 |
//! | `underset` | set of underloaded cores                             |
//!
//! The algorithm classifies each core as overloaded (`isHeavy`: total load
//! exceeds `T_avg` by more than `ε`) or underloaded (`isLight`), then
//! repeatedly pops the most-overloaded donor and moves its biggest
//! transferable task to an underloaded core that will not become overloaded
//! by receiving it, updating the heap and set until no overloaded core
//! remains (or no further transfer is possible — the paper implicitly
//! assumes one is, we must terminate regardless).

use crate::db::{LbStats, TaskId};
use crate::strategy::{LbStrategy, Migration};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The paper's interference-aware refinement balancer.
#[derive(Debug, Clone)]
pub struct CloudRefineLb {
    /// Tolerance `ε` as a fraction of `T_avg` (paper: "the deviation from
    /// the average load that the cloud operator is willing to allow").
    pub epsilon_frac: f64,
    /// Include the background term `O_p`. `true` is the paper's scheme;
    /// `false` degrades it to classic RefineLB (used as a baseline).
    pub account_bg: bool,
}

impl Default for CloudRefineLb {
    fn default() -> Self {
        CloudRefineLb { epsilon_frac: 0.05, account_bg: true }
    }
}

impl CloudRefineLb {
    /// Paper configuration with an explicit tolerance fraction.
    pub fn with_epsilon(epsilon_frac: f64) -> Self {
        assert!(epsilon_frac >= 0.0 && epsilon_frac.is_finite());
        CloudRefineLb { epsilon_frac, ..Default::default() }
    }
}

/// Max-heap entry ordered by load, ties broken by core index for
/// determinism.
#[derive(Debug, PartialEq)]
pub(crate) struct HeapEntry {
    pub(crate) load: f64,
    pub(crate) pe: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.load
            .total_cmp(&other.load)
            .then_with(|| other.pe.cmp(&self.pe))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry (`BinaryHeap` is a max-heap, so the ordering is
/// reversed): pops the lowest load first, ties broken by the lowest core
/// index — the same total order `min_by` over a set would pick.
#[derive(Debug, PartialEq)]
pub(crate) struct MinEntry {
    pub(crate) load: f64,
    pub(crate) pe: usize,
}

impl Eq for MinEntry {}

impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other.load
            .total_cmp(&self.load)
            .then_with(|| other.pe.cmp(&self.pe))
    }
}

impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Fenwick (binary-indexed) tree over presence bits of a statically
/// sorted task array: prefix counts, k-th-present selection, and bit
/// clears are all O(log n), so extracting the best task per migration
/// never shifts a `Vec` the way `Vec::remove` did.
#[derive(Debug, Default)]
pub(crate) struct Fenwick {
    /// 1-indexed tree; `tree[0]` is unused.
    tree: Vec<u32>,
    /// Smallest power of two ≥ length, cached for `select`'s descent.
    top: usize,
}

impl Fenwick {
    /// Rebuild as `n` present entries (all bits one) in O(n).
    pub(crate) fn reset_ones(&mut self, n: usize) {
        self.tree.clear();
        self.tree.resize(n + 1, 1);
        if n > 0 {
            self.tree[0] = 0;
        }
        for i in 1..=n {
            let parent = i + (i & i.wrapping_neg());
            if parent <= n {
                let v = self.tree[i];
                self.tree[parent] += v;
            }
        }
        self.top = n.next_power_of_two();
    }

    /// Present entries among the first `i` array slots (0-indexed
    /// exclusive bound).
    pub(crate) fn prefix(&self, mut i: usize) -> u32 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// 0-index of the `k`-th present entry (1-based `k`; the caller
    /// guarantees it exists).
    pub(crate) fn select(&self, mut k: u32) -> usize {
        let n = self.tree.len() - 1;
        let mut pos = 0;
        let mut step = self.top;
        while step > 0 {
            let next = pos + step;
            if next <= n && self.tree[next] < k {
                pos = next;
                k -= self.tree[next];
            }
            step >>= 1;
        }
        pos // largest pos with prefix(pos) < k ⇒ the k-th sits at slot pos
    }

    /// Clear the presence bit at 0-index `i` (must currently be set).
    pub(crate) fn clear(&mut self, i: usize) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }
}

/// Reusable buffers for [`refine_plan`]. At 1M chares / 32k cores a
/// fresh set of per-call allocations would dominate the strategy's run
/// time; with this scratch a steady-state window allocates O(1) beyond
/// the returned plan.
#[derive(Default)]
struct RefineScratch {
    doomed: Vec<bool>,
    eligible: Vec<usize>,
    loads: Vec<f64>,
    /// Per-core task lists sorted ascending by (load, id).
    tasks_on: Vec<Vec<(f64, TaskId)>>,
    /// Post-phase-0 tasks flattened core by core (each group still sorted
    /// ascending) — the static array the Fenwick tree indexes.
    entries: Vec<(f64, TaskId)>,
    /// Per-core `entries` range.
    range: Vec<(usize, usize)>,
    present: Fenwick,
    overheap: BinaryHeap<HeapEntry>,
    underheap: BinaryHeap<MinEntry>,
    in_under: Vec<bool>,
    recv_heap: BinaryHeap<MinEntry>,
}

thread_local! {
    static SCRATCH: RefCell<RefineScratch> = RefCell::new(RefineScratch::default());
}

/// Shared refinement engine used by [`CloudRefineLb`], the classic
/// [`crate::refine::RefineLb`], and per-node by
/// [`crate::hier::HierCloudRefineLb`].
///
/// Complexity: O(T log T) to sort the snapshot once, then O(log n) per
/// migration — the underset and the phase-0 receiver set are lazy
/// min-heaps (stale entries carry an out-of-date load and are dropped on
/// pop; a fresh entry always exists because every load change pushes
/// one), and each donor's task pool is a Fenwick tree of presence bits
/// over the statically sorted task array, so "largest task ≤ headroom"
/// is a partition point plus a prefix/select. The float operations run
/// in exactly the order the previous O(n)-per-move implementation used,
/// so plans are bit-identical to it.
pub(crate) fn refine_plan(stats: &LbStats, epsilon_frac: f64, account_bg: bool) -> Vec<Migration> {
    stats.validate();
    let p = stats.num_pes;
    if p == 0 || stats.tasks.is_empty() {
        return Vec::new();
    }
    SCRATCH.with(|s| refine_plan_with(&mut s.borrow_mut(), stats, epsilon_frac, account_bg))
}

fn refine_plan_with(
    scratch: &mut RefineScratch,
    stats: &LbStats,
    epsilon_frac: f64,
    account_bg: bool,
) -> Vec<Migration> {
    let p = stats.num_pes;
    let RefineScratch {
        doomed,
        eligible,
        loads,
        tasks_on,
        entries,
        range,
        present,
        overheap,
        underheap,
        in_under,
        recv_heap,
    } = scratch;

    // Cores under a preemption notice are zero-capacity: they may only
    // donate, and everything they host must leave. With no membership
    // churn the mask is empty and this engine reduces exactly to the
    // paper's Algorithm 1.
    doomed.clear();
    doomed.extend((0..p).map(|pe| stats.doomed_of(pe)));
    eligible.clear();
    eligible.extend((0..p).filter(|&pe| !doomed[pe]));
    if eligible.is_empty() {
        return Vec::new(); // nowhere anything could go
    }

    // Current per-core load: Σ t_i (+ O_p when interference-aware).
    stats.task_loads_into(loads);
    if account_bg {
        for (l, o) in loads.iter_mut().zip(&stats.bg_load) {
            *l += o;
        }
    }

    // Per-core task lists sorted ascending by load, so the biggest
    // transferable task is found with a partition-point search.
    tasks_on.resize_with(p, Vec::new);
    for list in tasks_on.iter_mut() {
        list.clear();
    }
    for t in &stats.tasks {
        tasks_on[t.pe].push((t.load, t.id));
    }
    for list in tasks_on.iter_mut() {
        list.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    }

    let mut plan = Vec::new();

    // Phase 0 (elastic membership): force-drain doomed cores. Every task
    // moves to the least-loaded eligible core regardless of headroom — an
    // overloaded survivor beats a task lost to revocation. The receiver
    // choice is a lazy min-heap: eligible loads only grow here, so a
    // stale entry (pushed before its core's load last changed) sorts
    // ahead of the fresh one and is detected by a bit-exact load compare.
    if doomed.iter().any(|&d| d) {
        recv_heap.clear();
        for &pe in eligible.iter() {
            recv_heap.push(MinEntry { load: loads[pe], pe });
        }
        for pe in 0..p {
            if !doomed[pe] {
                continue;
            }
            while let Some((task_load, task_id)) = tasks_on[pe].pop() {
                let dest = loop {
                    let e = recv_heap.peek().expect("eligible nonempty");
                    if e.load.to_bits() == loads[e.pe].to_bits() {
                        break e.pe;
                    }
                    recv_heap.pop();
                };
                plan.push(Migration { task: task_id, from: pe, to: dest });
                loads[pe] -= task_load;
                loads[dest] += task_load;
                recv_heap.push(MinEntry { load: loads[dest], pe: dest });
                let list = &mut tasks_on[dest];
                let at = list.partition_point(|&(l, id)| {
                    l < task_load || (l == task_load && id < task_id)
                });
                list.insert(at, (task_load, task_id));
            }
        }
    }

    // T_avg over the cores that will still exist; doomed cores contribute
    // no capacity to the average.
    let t_avg =
        eligible.iter().map(|&pe| loads[pe]).sum::<f64>() / eligible.len() as f64;
    let eps = epsilon_frac * t_avg;

    let is_heavy = |load: f64| load - t_avg > eps;
    let is_light = |load: f64| t_avg - load > eps;

    // Freeze the post-phase-0 task lists into one flat array with a
    // presence-bit Fenwick tree over it. "Remove a task" becomes a bit
    // clear; "largest remaining task ≤ headroom" becomes a partition
    // point over the static slice plus a prefix/select pair.
    entries.clear();
    range.clear();
    for tasks in tasks_on.iter().take(p) {
        let start = entries.len();
        entries.extend_from_slice(tasks);
        range.push((start, entries.len()));
    }
    present.reset_ones(entries.len());

    // Lines 2–8: build overheap and underset. Doomed cores take part in
    // neither (already emptied, zero capacity); freshly warmed-up
    // acquisitions join the underset even when borderline so they are
    // eagerly refilled. The underset is a lazy min-heap plus a
    // membership mask: `in_under[pe]` is the live set, heap entries are
    // hints that may be stale.
    overheap.clear();
    underheap.clear();
    in_under.clear();
    in_under.resize(p, false);
    for &pe in eligible.iter() {
        let load = loads[pe];
        if is_heavy(load) {
            overheap.push(HeapEntry { load, pe });
        } else if is_light(load) || stats.fresh_of(pe) {
            underheap.push(MinEntry { load, pe });
            in_under[pe] = true;
        }
    }

    // Lines 10–15: drain the overheap.
    while let Some(HeapEntry { load, pe: donor }) = overheap.pop() {
        // Stale heap entries (loads change as we migrate) are skipped.
        if (load - loads[donor]).abs() > 1e-12 {
            if is_heavy(loads[donor]) {
                overheap.push(HeapEntry { load: loads[donor], pe: donor });
            }
            continue;
        }

        // getBestCoreAndTask(donor, underset): the least-loaded underloaded
        // core has the most headroom. Pop entries for cores that left the
        // set or whose load has since changed (receivers only gain load,
        // so the fresh entry sorts after its stale ones).
        let best_core = loop {
            match underheap.peek() {
                None => break None,
                Some(e) if !in_under[e.pe] || e.load.to_bits() != loads[e.pe].to_bits() => {
                    underheap.pop();
                }
                Some(e) => break Some(e.pe),
            }
        };
        let Some(best_core) = best_core else {
            break; // nobody can receive
        };
        let headroom = t_avg + eps - loads[best_core];

        // The best task is the biggest one that fits that headroom
        // without overloading the receiver (line 12): partition point
        // over the donor's static ascending slice, then take the last
        // still-present entry before the cut.
        let (start, end) = range[donor];
        let cut = start + entries[start..end].partition_point(|&(l, _)| l <= headroom);
        let before = present.prefix(start);
        let avail = present.prefix(cut) - before;
        if avail == 0 {
            // Nothing fits anywhere (best_core had maximal headroom):
            // this donor cannot be improved; drop it to guarantee
            // termination.
            continue;
        }
        let idx = present.select(before + avail);
        let (task_load, task_id) = entries[idx];
        present.clear(idx);

        // Line 13: m_bestTask^k = bestCore.
        plan.push(Migration { task: task_id, from: donor, to: best_core });

        // Line 14: updateHeapAndSet().
        loads[donor] -= task_load;
        loads[best_core] += task_load;
        if is_heavy(loads[donor]) {
            overheap.push(HeapEntry { load: loads[donor], pe: donor });
        } else if is_light(loads[donor]) {
            underheap.push(MinEntry { load: loads[donor], pe: donor });
            in_under[donor] = true;
        }
        if !is_light(loads[best_core]) {
            in_under[best_core] = false;
        } else {
            underheap.push(MinEntry { load: loads[best_core], pe: best_core });
        }
    }

    plan
}

impl LbStrategy for CloudRefineLb {
    fn name(&self) -> &'static str {
        if self.account_bg {
            "CloudRefineLB"
        } else {
            "RefineLB"
        }
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        refine_plan(stats, self.epsilon_frac, self.account_bg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::TaskInfo;
    use crate::strategy::{apply_plan, validate_plan};

    fn stats(num_pes: usize, tasks: &[(u64, usize, f64)], bg: &[f64]) -> LbStats {
        let mut s = LbStats::new(num_pes);
        s.tasks = tasks
            .iter()
            .map(|&(id, pe, load)| TaskInfo { id: TaskId(id), pe, load, bytes: 4096 })
            .collect();
        s.bg_load = bg.to_vec();
        s
    }

    /// 32 tasks of 0.25 s on 4 cores (8 chares per core — the paper's
    /// over-decomposition), core 0 carrying an interfering load of 2.0 s:
    /// the paper's Fig. 1 situation. The balancer must shed core 0.
    fn interfered() -> LbStats {
        let tasks: Vec<(u64, usize, f64)> =
            (0..32).map(|i| (i, (i % 4) as usize, 0.25)).collect();
        stats(4, &tasks, &[2.0, 0.0, 0.0, 0.0])
    }

    #[test]
    fn sheds_load_from_interfered_core() {
        let mut lb = CloudRefineLb::default();
        let plan = lb.plan(&interfered());
        validate_plan(&interfered(), &plan);
        assert!(!plan.is_empty());
        assert!(plan.iter().all(|m| m.from == 0), "only the interfered core donates: {plan:?}");
        // Post-LB total loads within epsilon of T_avg (2.5).
        let after = apply_plan(&interfered(), &plan);
        let loads = after.total_loads();
        let t_avg = after.t_avg();
        for (pe, l) in loads.iter().enumerate() {
            assert!(l - t_avg <= 0.05 * t_avg + 1.0 + 1e-9, "pe{pe} load {l} vs avg {t_avg}");
        }
    }

    #[test]
    fn classic_refine_ignores_background() {
        // Same snapshot; with account_bg = false the tasks are already
        // perfectly balanced, so classic refinement does nothing. This is
        // exactly the gap the paper fills.
        let mut lb = CloudRefineLb { account_bg: false, ..Default::default() };
        assert!(lb.plan(&interfered()).is_empty());
    }

    #[test]
    fn balanced_input_produces_empty_plan() {
        let s = stats(4, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (3, 3, 1.0)], &[0.0; 4]);
        assert!(CloudRefineLb::default().plan(&s).is_empty());
    }

    #[test]
    fn receiver_is_never_overloaded_by_a_transfer() {
        // Donor has one huge task that would overload any receiver; the
        // algorithm must refuse to move it (line 12's constraint).
        let s = stats(2, &[(0, 0, 10.0), (1, 1, 1.0)], &[0.0, 0.0]);
        let plan = CloudRefineLb::default().plan(&s);
        assert!(plan.is_empty(), "moving the 10.0 task would overload pe1: {plan:?}");
    }

    #[test]
    fn moves_biggest_fitting_task_first() {
        // Donor pe0: tasks 3.0, 2.0, 1.0; pe1 empty. T_avg = 3.0.
        // Headroom on pe1 = 3.0 + eps; the biggest fitting task is 3.0.
        let s = stats(2, &[(0, 0, 3.0), (1, 0, 2.0), (2, 0, 1.0)], &[0.0, 0.0]);
        let plan = CloudRefineLb::default().plan(&s);
        assert_eq!(plan.first().map(|m| m.task), Some(TaskId(0)));
    }

    #[test]
    fn all_cores_overloaded_by_bg_terminates() {
        // Interference everywhere: underset is empty; nothing to do.
        let s = stats(2, &[(0, 0, 1.0), (1, 1, 1.0)], &[5.0, 5.0]);
        let plan = CloudRefineLb::default().plan(&s);
        assert!(plan.is_empty());
    }

    #[test]
    fn no_tasks_on_overloaded_core_terminates() {
        // Overload is purely background; there is nothing to migrate away.
        let s = stats(2, &[(0, 1, 1.0)], &[9.0, 0.0]);
        let plan = CloudRefineLb::default().plan(&s);
        assert!(plan.is_empty());
    }

    #[test]
    fn epsilon_zero_still_terminates() {
        let mut lb = CloudRefineLb::with_epsilon(0.0);
        let s = interfered();
        let plan = lb.plan(&s);
        validate_plan(&s, &plan);
    }

    #[test]
    fn larger_epsilon_tolerates_more_imbalance() {
        let tight = CloudRefineLb::with_epsilon(0.01).plan(&interfered());
        let loose = CloudRefineLb::with_epsilon(1.0).plan(&interfered());
        assert!(loose.len() <= tight.len());
        assert!(loose.is_empty(), "ε = 100% tolerates the 4-core example");
    }

    #[test]
    fn deterministic_plans() {
        let s = interfered();
        let a = CloudRefineLb::default().plan(&s);
        let b = CloudRefineLb::default().plan(&s);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_and_trivial_inputs() {
        assert!(CloudRefineLb::default().plan(&LbStats::new(0)).is_empty());
        assert!(CloudRefineLb::default().plan(&LbStats::new(4)).is_empty());
        let one_pe = stats(1, &[(0, 0, 1.0)], &[3.0]);
        assert!(CloudRefineLb::default().plan(&one_pe).is_empty());
    }

    #[test]
    fn doomed_core_is_fully_drained_even_past_headroom() {
        // Core 0 is doomed and hosts half the work; every one of its tasks
        // must leave, even though receivers end above T_avg + ε.
        let tasks: Vec<(u64, usize, f64)> =
            (0..16).map(|i| (i, (i % 2) as usize, 0.5)).collect();
        let mut s = stats(2, &tasks, &[0.0, 0.0]);
        s.doomed = vec![true, false];
        let plan = CloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        let moved: Vec<_> = plan.iter().filter(|m| m.from == 0).collect();
        assert_eq!(moved.len(), 8, "all 8 tasks on the doomed core move: {plan:?}");
        assert!(plan.iter().all(|m| m.to == 1));
    }

    #[test]
    fn doomed_core_never_receives() {
        // Core 1 is doomed *and* idle — normally the perfect receiver.
        let s0 = stats(3, &[(0, 0, 1.0), (1, 0, 1.0), (2, 0, 1.0), (3, 2, 0.2)], &[0.0; 3]);
        let mut s = s0.clone();
        s.doomed = vec![false, true, false];
        let plan = CloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(plan.iter().all(|m| m.to != 1), "doomed pe1 received: {plan:?}");
        // Without the mask, pe1 would have been used.
        let unmasked = CloudRefineLb::default().plan(&s0);
        assert!(unmasked.iter().any(|m| m.to == 1));
    }

    #[test]
    fn all_cores_doomed_yields_empty_plan() {
        let mut s = stats(2, &[(0, 0, 1.0), (1, 1, 1.0)], &[0.0, 0.0]);
        s.doomed = vec![true, true];
        assert!(CloudRefineLb::default().plan(&s).is_empty());
    }

    #[test]
    fn fresh_core_is_eagerly_refilled() {
        // pe2 just warmed up, empty; donors are mildly overloaded.
        let tasks: Vec<(u64, usize, f64)> =
            (0..12).map(|i| (i, (i % 2) as usize, 0.25)).collect();
        let mut s = stats(3, &tasks, &[0.0; 3]);
        s.fresh = vec![false, false, true];
        let plan = CloudRefineLb::default().plan(&s);
        validate_plan(&s, &plan);
        assert!(plan.iter().any(|m| m.to == 2), "fresh pe2 not refilled: {plan:?}");
    }

    #[test]
    fn empty_masks_change_nothing() {
        // Explicit all-false masks must reproduce the maskless plan
        // bit-for-bit (the engine reduces to Algorithm 1).
        let base = CloudRefineLb::default().plan(&interfered());
        let mut s = interfered();
        s.doomed = vec![false; 4];
        s.fresh = vec![false; 4];
        assert_eq!(CloudRefineLb::default().plan(&s), base);
    }

    #[test]
    fn fig3_scenario_migrates_back_when_interference_moves() {
        // Interference moves from core 1 to core 3 (paper Fig. 3). The
        // balancer reacts to the *current* snapshot only.
        let tasks: Vec<(u64, usize, f64)> =
            (0..32).map(|i| (i, (i % 4) as usize, 0.25)).collect();
        let phase_a = stats(4, &tasks, &[0.0, 2.0, 0.0, 0.0]);
        let plan_a = CloudRefineLb::default().plan(&phase_a);
        assert!(!plan_a.is_empty());
        assert!(plan_a.iter().all(|m| m.from == 1));

        // After LB, interference ends on 1 and appears on 3.
        let after_a = apply_plan(&phase_a, &plan_a);
        let mut phase_b = after_a.clone();
        phase_b.bg_load = vec![0.0, 0.0, 0.0, 2.0];
        let plan_b = CloudRefineLb::default().plan(&phase_b);
        assert!(plan_b.iter().all(|m| m.from == 3), "{plan_b:?}");
    }
}
