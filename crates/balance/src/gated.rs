//! Migration-gain gating — the paper's future-work strategy.
//!
//! §VI: "we also plan to explore a strategy where load balancing decisions
//! are performed every time a load balancer is invoked, however, data
//! migration is performed only if we expect gains that can offset the cost
//! of migration." This wrapper implements that: it always runs the inner
//! strategy, estimates the plan's benefit (per-iteration makespan reduction
//! times the remaining horizon) and its cost (bytes over the network plus
//! per-object overhead), and drops the plan when the cost wins.

use crate::db::LbStats;
use crate::strategy::{apply_plan, LbStrategy, Migration};
use serde::{Deserialize, Serialize};

/// Cost/benefit parameters for the gate.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GateConfig {
    /// Effective migration bandwidth (bytes per second) — degraded in the
    /// cloud, which is exactly why the paper wants this gate.
    pub bytes_per_sec: f64,
    /// Fixed per-object pack/unpack/reroute overhead (seconds).
    pub per_object_cost_s: f64,
    /// How many LB windows of benefit to credit (remaining run horizon,
    /// in units of the current window).
    pub horizon_windows: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { bytes_per_sec: 50e6, per_object_cost_s: 0.002, horizon_windows: 5.0 }
    }
}

impl GateConfig {
    /// Estimated wall-clock cost of committing `plan` (seconds).
    pub fn cost_s(&self, stats: &LbStats, plan: &[Migration]) -> f64 {
        plan.iter()
            .map(|m| {
                let bytes = stats.task(m.task).map_or(0, |t| t.bytes) as f64;
                bytes / self.bytes_per_sec + self.per_object_cost_s
            })
            .sum()
    }

    /// Estimated benefit: reduction in the per-window makespan (the max
    /// over cores of `Σ t_i + O_p`) credited over the horizon.
    pub fn gain_s(&self, stats: &LbStats, plan: &[Migration]) -> f64 {
        let before = max_load(stats);
        let after = max_load(&apply_plan(stats, plan));
        (before - after).max(0.0) * self.horizon_windows
    }
}

fn max_load(stats: &LbStats) -> f64 {
    stats.total_loads().into_iter().fold(0.0, f64::max)
}

/// Wraps any strategy with the gain/cost gate.
pub struct GainGatedLb<S: LbStrategy> {
    inner: S,
    /// Gate parameters.
    pub config: GateConfig,
    /// How many plans the gate has vetoed (for reports/ablations).
    pub vetoed: usize,
}

impl<S: LbStrategy> GainGatedLb<S> {
    /// Gate `inner` with `config`.
    pub fn new(inner: S, config: GateConfig) -> Self {
        GainGatedLb { inner, config, vetoed: 0 }
    }
}

impl<S: LbStrategy> LbStrategy for GainGatedLb<S> {
    fn name(&self) -> &'static str {
        "GainGated"
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        let plan = self.inner.plan(stats);
        if plan.is_empty() {
            return plan;
        }
        let gain = self.config.gain_s(stats, &plan);
        let cost = self.config.cost_s(stats, &plan);
        if gain >= cost {
            plan
        } else {
            self.vetoed += 1;
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudRefineLb;
    use crate::db::{TaskId, TaskInfo};

    fn interfered(bytes: u64) -> LbStats {
        let mut s = LbStats::new(4);
        for i in 0..32u64 {
            s.tasks.push(TaskInfo { id: TaskId(i), pe: (i % 4) as usize, load: 0.25, bytes });
        }
        s.bg_load = vec![2.0, 0.0, 0.0, 0.0];
        s
    }

    #[test]
    fn cheap_migrations_pass_the_gate() {
        let mut lb = GainGatedLb::new(CloudRefineLb::default(), GateConfig::default());
        let plan = lb.plan(&interfered(1024));
        assert!(!plan.is_empty());
        assert_eq!(lb.vetoed, 0);
    }

    #[test]
    fn expensive_migrations_are_vetoed() {
        // Gigantic objects over a slow cloud network with a short horizon.
        let cfg = GateConfig { bytes_per_sec: 1e6, per_object_cost_s: 0.5, horizon_windows: 1.0 };
        let mut lb = GainGatedLb::new(CloudRefineLb::default(), cfg);
        let plan = lb.plan(&interfered(100_000_000));
        assert!(plan.is_empty());
        assert_eq!(lb.vetoed, 1);
    }

    #[test]
    fn gate_is_transparent_when_inner_plans_nothing() {
        let balanced = LbStats::new(4);
        let mut lb = GainGatedLb::new(CloudRefineLb::default(), GateConfig::default());
        assert!(lb.plan(&balanced).is_empty());
        assert_eq!(lb.vetoed, 0);
    }

    #[test]
    fn gain_and_cost_estimates_are_sane() {
        let s = interfered(1_000_000);
        let plan = CloudRefineLb::default().plan(&s);
        let cfg = GateConfig::default();
        assert!(cfg.gain_s(&s, &plan) > 0.0);
        let expected_cost = plan.len() as f64 * (1_000_000.0 / cfg.bytes_per_sec + cfg.per_object_cost_s);
        assert!((cfg.cost_s(&s, &plan) - expected_cost).abs() < 1e-9);
    }

    #[test]
    fn longer_horizon_amortizes_cost() {
        let s = interfered(40_000_000);
        let short = GateConfig { horizon_windows: 0.1, ..Default::default() };
        let long = GateConfig { horizon_windows: 1000.0, ..Default::default() };
        let mut lb_short = GainGatedLb::new(CloudRefineLb::default(), short);
        let mut lb_long = GainGatedLb::new(CloudRefineLb::default(), long);
        assert!(lb_short.plan(&s).is_empty());
        assert!(!lb_long.plan(&s).is_empty());
    }
}
