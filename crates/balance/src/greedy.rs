//! GreedyLB: the classic from-scratch Charm++ strategy.
//!
//! Sorts all tasks by descending load and assigns each to the currently
//! least-loaded core, ignoring current placement entirely. It produces
//! near-optimal balance but migrates almost everything — the paper
//! contrasts its own scheme with Brunner et al. by "achieving load
//! balance while minimizing task migrations", and the ABL-STRAT ablation
//! quantifies that migration-count gap.

use crate::db::LbStats;
use crate::strategy::{LbStrategy, Migration};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Greedy rebalancer. `account_bg` seeds core loads with `O_p`, producing
/// an interference-aware greedy variant for comparison.
#[derive(Debug, Clone, Copy)]
pub struct GreedyLb {
    /// Seed per-core load with the measured background term.
    pub account_bg: bool,
}

impl GreedyLb {
    /// Classic GreedyLB (application load only).
    pub fn classic() -> Self {
        GreedyLb { account_bg: false }
    }

    /// Background-aware greedy variant.
    pub fn interference_aware() -> Self {
        GreedyLb { account_bg: true }
    }
}

#[derive(Debug, PartialEq)]
struct MinEntry {
    load: f64,
    pe: usize,
}

impl Eq for MinEntry {}
impl Ord for MinEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.load.total_cmp(&other.load).then_with(|| self.pe.cmp(&other.pe))
    }
}
impl PartialOrd for MinEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl LbStrategy for GreedyLb {
    fn name(&self) -> &'static str {
        if self.account_bg {
            "GreedyBgLB"
        } else {
            "GreedyLB"
        }
    }

    fn plan(&mut self, stats: &LbStats) -> Vec<Migration> {
        stats.validate();
        if stats.num_pes == 0 || stats.tasks.is_empty() {
            return Vec::new();
        }
        // Min-heap of cores by (possibly bg-seeded) load.
        let mut heap: BinaryHeap<Reverse<MinEntry>> = (0..stats.num_pes)
            .map(|pe| {
                let load = if self.account_bg { stats.bg_load[pe] } else { 0.0 };
                Reverse(MinEntry { load, pe })
            })
            .collect();

        // Tasks by descending load; ties by id for determinism.
        let mut tasks: Vec<_> = stats.tasks.iter().collect();
        tasks.sort_by(|a, b| b.load.total_cmp(&a.load).then_with(|| a.id.cmp(&b.id)));

        let mut plan = Vec::new();
        for t in tasks {
            let Reverse(MinEntry { load, pe }) = heap.pop().expect("num_pes > 0");
            if pe != t.pe {
                plan.push(Migration { task: t.id, from: t.pe, to: pe });
            }
            heap.push(Reverse(MinEntry { load: load + t.load, pe }));
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{TaskId, TaskInfo};
    use crate::strategy::{apply_plan, validate_plan};

    fn stats(num_pes: usize, tasks: &[(u64, usize, f64)], bg: &[f64]) -> LbStats {
        let mut s = LbStats::new(num_pes);
        s.tasks = tasks
            .iter()
            .map(|&(id, pe, load)| TaskInfo { id: TaskId(id), pe, load, bytes: 128 })
            .collect();
        s.bg_load = bg.to_vec();
        s
    }

    #[test]
    fn balances_skewed_load() {
        let s = stats(
            2,
            &[(0, 0, 4.0), (1, 0, 3.0), (2, 0, 2.0), (3, 0, 1.0)],
            &[0.0, 0.0],
        );
        let plan = GreedyLb::classic().plan(&s);
        validate_plan(&s, &plan);
        let after = apply_plan(&s, &plan);
        let loads = after.task_loads();
        assert!((loads[0] - loads[1]).abs() <= 1.0 + 1e-9, "{loads:?}");
    }

    #[test]
    fn classic_ignores_bg_but_aware_variant_avoids_it() {
        // Two equal tasks, heavy interference on pe0.
        let s = stats(2, &[(0, 0, 1.0), (1, 1, 1.0)], &[10.0, 0.0]);
        // Classic: loads look balanced, greedy reassigns one task per core
        // (possibly onto the interfered core).
        let aware_plan = GreedyLb::interference_aware().plan(&s);
        let after = apply_plan(&s, &aware_plan);
        // Both tasks end on pe1, away from the interference.
        assert!(after.tasks.iter().all(|t| t.pe == 1), "{after:?}");
    }

    #[test]
    fn migrates_more_than_refinement() {
        // The churn comparison the paper alludes to (§II, Brunner et al.).
        let tasks: Vec<(u64, usize, f64)> =
            (0..32).map(|i| (i, (i % 4) as usize, 0.25)).collect();
        let s = stats(4, &tasks, &[2.0, 0.0, 0.0, 0.0]);
        let greedy = GreedyLb::interference_aware().plan(&s);
        let refine = crate::cloud::CloudRefineLb::default().plan(&s);
        assert!(!refine.is_empty());
        assert!(
            greedy.len() > refine.len(),
            "greedy {} vs refine {}",
            greedy.len(),
            refine.len()
        );
    }

    #[test]
    fn deterministic() {
        let s = stats(3, &[(0, 0, 1.0), (1, 0, 2.0), (2, 1, 3.0)], &[0.0; 3]);
        assert_eq!(GreedyLb::classic().plan(&s), GreedyLb::classic().plan(&s));
    }

    #[test]
    fn empty_inputs() {
        assert!(GreedyLb::classic().plan(&LbStats::new(0)).is_empty());
        assert!(GreedyLb::classic().plan(&LbStats::new(3)).is_empty());
    }
}
