//! Plan sanitization: make an arbitrary migration plan safe to commit.
//!
//! [`crate::strategy::validate_plan`] *panics* on malformed plans — the
//! right contract for catching strategy bugs in tests. A fault-tolerant
//! runtime needs the opposite: when cores can die between snapshot and
//! commit, a plan referencing a dead PE is an expected hazard, not a bug,
//! and the run must keep going. [`sanitize_plan`] repairs what it can
//! (retargeting migrations aimed at dead or out-of-range cores onto the
//! least-loaded surviving core) and drops what it cannot (unknown tasks,
//! duplicates, stale `from` fields, tasks stranded on dead cores with no
//! live destination). It never panics; in the worst case the result is the
//! identity plan (no migrations), which is always safe.

use crate::db::LbStats;
use crate::strategy::Migration;

/// Outcome of sanitizing a plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SanitizedPlan {
    /// The safe-to-commit migrations.
    pub plan: Vec<Migration>,
    /// Migrations whose destination was rewritten to a live core.
    pub repaired: usize,
    /// Migrations removed entirely.
    pub dropped: usize,
}

impl SanitizedPlan {
    /// `true` when the input plan was already clean.
    pub fn was_clean(&self) -> bool {
        self.repaired == 0 && self.dropped == 0
    }
}

/// `true` when `pe` is in range and marked alive. Indices beyond the mask
/// count as dead (defensive: a shrunken mask must not grant liveness).
fn is_alive(alive: &[bool], pe: usize) -> bool {
    alive.get(pe).copied().unwrap_or(false)
}

/// `true` when `pe` may *receive* migrations: alive and not under a
/// preemption notice (`stats.doomed`). A doomed core is a source only.
fn is_target(stats: &LbStats, alive: &[bool], pe: usize) -> bool {
    is_alive(alive, pe) && !stats.doomed_of(pe)
}

/// Repair or drop every unsafe migration in `plan`.
///
/// `alive[pe]` says whether core `pe` survives; it is indexed like
/// `stats`' PE space. Checks, in order, per migration:
/// * task exists in `stats` (else drop);
/// * task not already migrated by an earlier entry (else drop);
/// * `from` matches the task's current PE (repaired silently — the task's
///   actual location wins);
/// * destination alive, in range and not doomed (`stats.doomed` — cores
///   under a preemption notice must only *lose* tasks); else retarget to
///   the eligible core with the lowest projected total load; drop if none
///   or if that equals the source.
///
/// Projected loads account for migrations already accepted, so several
/// repaired migrations spread over the survivors instead of piling onto
/// one core.
pub fn sanitize_plan(stats: &LbStats, plan: &[Migration], alive: &[bool]) -> SanitizedPlan {
    let mut out = SanitizedPlan::default();
    // Projected per-PE totals (task loads + background), updated as
    // migrations are accepted.
    let mut loads = stats.total_loads();
    let mut seen = std::collections::HashSet::new();

    for m in plan {
        let Some(task) = stats.task(m.task) else {
            out.dropped += 1;
            continue;
        };
        if !seen.insert(m.task) {
            out.dropped += 1;
            continue;
        }
        let from = task.pe; // authoritative; a stale m.from is ignored
        let mut to = m.to;
        let mut repaired = false;
        if !is_target(stats, alive, to) {
            // Retarget: least projected load among eligible cores,
            // excluding the source (a no-op migration is a drop, not a
            // repair).
            let best = alive
                .iter()
                .enumerate()
                .filter(|&(pe, _)| is_target(stats, alive, pe) && pe != from && pe < loads.len())
                .min_by(|a, b| {
                    loads[a.0].partial_cmp(&loads[b.0]).unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(pe, _)| pe);
            match best {
                Some(pe) => {
                    to = pe;
                    repaired = true;
                }
                None => {
                    out.dropped += 1;
                    continue;
                }
            }
        }
        if to == from {
            out.dropped += 1;
            continue;
        }
        if from < loads.len() {
            loads[from] -= task.load;
        }
        if to < loads.len() {
            loads[to] += task.load;
        }
        out.repaired += usize::from(repaired);
        out.plan.push(Migration { task: m.task, from, to });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{TaskId, TaskInfo};

    fn stats(pes: usize, tasks: &[(u64, usize, f64)]) -> LbStats {
        let mut s = LbStats::new(pes);
        s.tasks = tasks
            .iter()
            .map(|&(id, pe, load)| TaskInfo { id: TaskId(id), pe, load, bytes: 64 })
            .collect();
        s
    }

    #[test]
    fn clean_plan_passes_through() {
        let s = stats(3, &[(0, 0, 1.0), (1, 0, 1.0)]);
        let plan = vec![Migration { task: TaskId(1), from: 0, to: 2 }];
        let r = sanitize_plan(&s, &plan, &[true, true, true]);
        assert_eq!(r.plan, plan);
        assert!(r.was_clean());
    }

    #[test]
    fn dead_destination_is_retargeted_to_least_loaded_survivor() {
        let s = stats(4, &[(0, 0, 1.0), (1, 2, 5.0), (2, 3, 0.5)]);
        // Core 1 is dead; the plan still aims there.
        let plan = vec![Migration { task: TaskId(0), from: 0, to: 1 }];
        let r = sanitize_plan(&s, &plan, &[true, false, true, true]);
        assert_eq!(r.repaired, 1);
        assert_eq!(r.dropped, 0);
        // Survivors: pe2 (5.0) and pe3 (0.5) → retarget to pe3.
        assert_eq!(r.plan, vec![Migration { task: TaskId(0), from: 0, to: 3 }]);
    }

    #[test]
    fn repairs_spread_over_survivors() {
        let s = stats(3, &[(0, 0, 1.0), (1, 0, 1.0), (2, 2, 0.1)]);
        // Both migrations aim at dead core 1; the second repair must see
        // the first one's projected load and pick the other survivor.
        let plan = vec![
            Migration { task: TaskId(0), from: 0, to: 1 },
            Migration { task: TaskId(1), from: 0, to: 1 },
        ];
        let r = sanitize_plan(&s, &plan, &[true, false, true]);
        assert_eq!(r.repaired, 2);
        let dests: Vec<usize> = r.plan.iter().map(|m| m.to).collect();
        assert_eq!(dests, vec![2, 2]); // 0.1, then 1.1 — still below source's 2.0
    }

    #[test]
    fn unknown_duplicate_and_noop_migrations_are_dropped() {
        let s = stats(2, &[(0, 0, 1.0)]);
        let plan = vec![
            Migration { task: TaskId(9), from: 0, to: 1 }, // unknown
            Migration { task: TaskId(0), from: 0, to: 1 },
            Migration { task: TaskId(0), from: 0, to: 1 }, // duplicate
            Migration { task: TaskId(0), from: 0, to: 0 }, // would be no-op
        ];
        let r = sanitize_plan(&s, &plan, &[true, true]);
        assert_eq!(r.plan.len(), 1);
        assert_eq!(r.dropped, 3);
    }

    #[test]
    fn stale_from_is_corrected_from_stats() {
        let s = stats(3, &[(0, 2, 1.0)]);
        let plan = vec![Migration { task: TaskId(0), from: 0, to: 1 }];
        let r = sanitize_plan(&s, &plan, &[true, true, true]);
        assert_eq!(r.plan, vec![Migration { task: TaskId(0), from: 2, to: 1 }]);
    }

    #[test]
    fn no_survivors_means_identity_plan_not_panic() {
        let s = stats(2, &[(0, 0, 1.0)]);
        let plan = vec![Migration { task: TaskId(0), from: 0, to: 1 }];
        // Only the source is alive → nothing valid to do.
        let r = sanitize_plan(&s, &plan, &[true, false]);
        assert!(r.plan.is_empty());
        assert_eq!(r.dropped, 1);
        // Even an all-dead mask (or an empty one) must not panic.
        let r = sanitize_plan(&s, &plan, &[false, false]);
        assert!(r.plan.is_empty());
        let r = sanitize_plan(&s, &plan, &[]);
        assert!(r.plan.is_empty());
    }

    #[test]
    fn doomed_destination_is_retargeted_like_a_dead_one() {
        let mut s = stats(3, &[(0, 0, 1.0), (1, 2, 0.5)]);
        s.doomed = vec![false, true, false];
        // Plan aims at doomed core 1 → retarget to the only eligible
        // survivor, core 2.
        let plan = vec![Migration { task: TaskId(0), from: 0, to: 1 }];
        let r = sanitize_plan(&s, &plan, &[true, true, true]);
        assert_eq!(r.repaired, 1);
        assert_eq!(r.plan, vec![Migration { task: TaskId(0), from: 0, to: 2 }]);
    }

    #[test]
    fn all_eligible_cores_doomed_means_drop_not_panic() {
        let mut s = stats(2, &[(0, 0, 1.0)]);
        s.doomed = vec![false, true];
        let plan = vec![Migration { task: TaskId(0), from: 0, to: 1 }];
        let r = sanitize_plan(&s, &plan, &[true, true]);
        assert!(r.plan.is_empty());
        assert_eq!(r.dropped, 1);
    }

    #[test]
    fn out_of_range_destination_is_treated_as_dead() {
        let s = stats(2, &[(0, 0, 1.0)]);
        let plan = vec![Migration { task: TaskId(0), from: 0, to: 7 }];
        let r = sanitize_plan(&s, &plan, &[true, true]);
        assert_eq!(r.plan, vec![Migration { task: TaskId(0), from: 0, to: 1 }]);
        assert_eq!(r.repaired, 1);
    }
}
