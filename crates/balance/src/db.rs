//! The load-balancing database snapshot.
//!
//! Mirrors what the Charm++ LB framework hands a strategy: for every
//! migratable task its measured load and current core, plus — the paper's
//! addition — the measured background (interference) load `O_p` per core.
//! Loads are in seconds of CPU over the last LB window.

use serde::{Deserialize, Serialize};

/// Globally unique identifier of a migratable task (chare).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u64);

/// One migratable task's entry in the database.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskInfo {
    /// Task identity (stable across migrations).
    pub id: TaskId,
    /// Core currently hosting the task.
    pub pe: usize,
    /// Measured (or predicted) CPU seconds for the next LB window — the
    /// paper's `t_i^p`, assumed persistent (§III).
    pub load: f64,
    /// Serialized size, for migration-cost models.
    pub bytes: u64,
}

/// One edge of the task communication graph (undirected; `bytes` is the
/// total window traffic both ways).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommEdge {
    /// One endpoint.
    pub a: TaskId,
    /// The other endpoint.
    pub b: TaskId,
    /// Bytes exchanged over the LB window.
    pub bytes: u64,
}

/// Snapshot fed to a strategy at one load-balancing step.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LbStats {
    /// Number of cores `P` available to the application.
    pub num_pes: usize,
    /// Every migratable task.
    pub tasks: Vec<TaskInfo>,
    /// The paper's `O_p`: background CPU seconds per core over the window
    /// (Eq. 2). All zeros when interference accounting is disabled.
    pub bg_load: Vec<f64>,
    /// Task communication graph (optional; empty when the runtime does not
    /// instrument communication). Used by communication-aware strategies.
    #[serde(default)]
    pub comm: Vec<CommEdge>,
    /// Per-core measurement confidence in `[0, 1]`, produced by the
    /// runtime's telemetry validation (1.0 = counters passed every check).
    /// Empty means "no validation ran" and is read as full confidence;
    /// robust strategies down-weight low-confidence cores.
    #[serde(default)]
    pub confidence: Vec<f64>,
    /// Tasks whose migration was *aborted* by the reliable transfer
    /// protocol in the previous LB step (network timeout/partition): the
    /// chare still sits on its old core, so the imbalance it was meant to
    /// fix persists. Advisory — strategies may treat these moves as
    /// recently proven expensive and prefer other candidates, or simply
    /// re-attempt them.
    #[serde(default)]
    pub failed_tasks: Vec<TaskId>,
    /// Cores under a spot preemption notice: zero-capacity *sources* that
    /// must fully empty before their node is revoked. Strategies must
    /// never target them and should drain them eagerly. Empty means "no
    /// core is doomed" (the static-membership common case).
    #[serde(default)]
    pub doomed: Vec<bool>,
    /// Cores freshly attached by an autoscale acquisition that completed
    /// warm-up this window: empty targets a strategy should eagerly
    /// refill. Empty means "no fresh cores". Advisory — an empty core is
    /// usually the least-loaded receiver anyway.
    #[serde(default)]
    pub fresh: Vec<bool>,
}

impl LbStats {
    /// Empty database for `num_pes` cores.
    pub fn new(num_pes: usize) -> Self {
        LbStats {
            num_pes,
            tasks: Vec::new(),
            bg_load: vec![0.0; num_pes],
            comm: Vec::new(),
            confidence: Vec::new(),
            failed_tasks: Vec::new(),
            doomed: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// `true` when core `pe` is under a preemption notice (false when no
    /// doomed mask was provided).
    pub fn doomed_of(&self, pe: usize) -> bool {
        self.doomed.get(pe).copied().unwrap_or(false)
    }

    /// `true` when core `pe` is a freshly warmed-up acquisition (false
    /// when no fresh mask was provided).
    pub fn fresh_of(&self, pe: usize) -> bool {
        self.fresh.get(pe).copied().unwrap_or(false)
    }

    /// `true` when `id`'s migration was aborted in the previous LB step.
    pub fn recently_failed(&self, id: TaskId) -> bool {
        self.failed_tasks.contains(&id)
    }

    /// Measurement confidence of core `pe` (1.0 when no validation ran).
    pub fn confidence_of(&self, pe: usize) -> f64 {
        self.confidence.get(pe).copied().unwrap_or(1.0)
    }

    /// Mean per-core confidence (1.0 when no validation ran).
    pub fn mean_confidence(&self) -> f64 {
        if self.confidence.is_empty() {
            return 1.0;
        }
        self.confidence.iter().sum::<f64>() / self.confidence.len() as f64
    }

    /// Panics if the snapshot is internally inconsistent (wrong vector
    /// sizes, out-of-range PEs, negative or non-finite loads).
    pub fn validate(&self) {
        assert_eq!(self.bg_load.len(), self.num_pes, "bg_load length != num_pes");
        for t in &self.tasks {
            assert!(t.pe < self.num_pes, "task {:?} on out-of-range pe {}", t.id, t.pe);
            assert!(t.load.is_finite() && t.load >= 0.0, "task {:?} load {}", t.id, t.load);
        }
        for (p, o) in self.bg_load.iter().enumerate() {
            assert!(o.is_finite() && *o >= 0.0, "bg load {o} on pe {p}");
        }
        assert!(
            self.confidence.is_empty() || self.confidence.len() == self.num_pes,
            "confidence length != num_pes"
        );
        for (p, c) in self.confidence.iter().enumerate() {
            assert!(c.is_finite() && (0.0..=1.0).contains(c), "confidence {c} on pe {p}");
        }
        if !self.comm.is_empty() || !self.failed_tasks.is_empty() {
            // One id set up front keeps validation O(tasks + edges); the
            // naive per-edge `task()` scan is quadratic at 1M chares.
            let ids: std::collections::HashSet<TaskId> =
                self.tasks.iter().map(|t| t.id).collect();
            for e in &self.comm {
                assert!(ids.contains(&e.a), "comm edge references unknown task {:?}", e.a);
                assert!(ids.contains(&e.b), "comm edge references unknown task {:?}", e.b);
                assert_ne!(e.a, e.b, "self-communication edge on {:?}", e.a);
            }
            for id in &self.failed_tasks {
                assert!(ids.contains(id), "failed_tasks references unknown task {id:?}");
            }
        }
        assert!(
            self.doomed.is_empty() || self.doomed.len() == self.num_pes,
            "doomed length != num_pes"
        );
        assert!(
            self.fresh.is_empty() || self.fresh.len() == self.num_pes,
            "fresh length != num_pes"
        );
    }

    /// CSR adjacency view of [`LbStats::comm`] (see [`CommGraph`]). Flat
    /// arrays replace the old per-call `HashMap<TaskId, Vec<…>>` — the
    /// same layout change that bought 4.4x in the runtime's message
    /// router.
    pub fn comm_graph(&self) -> CommGraph {
        CommGraph::build(self)
    }

    /// Sum of task loads per core (no background term), written into
    /// `out` — the allocation-free twin of [`LbStats::task_loads`] for
    /// strategy inner loops with a reusable scratch buffer.
    pub fn task_loads_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.resize(self.num_pes, 0.0);
        for t in &self.tasks {
            out[t.pe] += t.load;
        }
    }

    /// Sum of task loads per core (no background term).
    pub fn task_loads(&self) -> Vec<f64> {
        let mut loads = Vec::new();
        self.task_loads_into(&mut loads);
        loads
    }

    /// Total perceived load per core (`Σ t_i^p + O_p`), written into
    /// `out` — the allocation-free twin of [`LbStats::total_loads`].
    pub fn total_loads_into(&self, out: &mut Vec<f64>) {
        self.task_loads_into(out);
        for (l, o) in out.iter_mut().zip(&self.bg_load) {
            *l += o;
        }
    }

    /// Total perceived load per core: `Σ t_i^p + O_p`.
    pub fn total_loads(&self) -> Vec<f64> {
        let mut loads = Vec::new();
        self.total_loads_into(&mut loads);
        loads
    }

    /// The paper's Eq. 1: `T_avg = Σ_p (Σ_i t_i^p + O_p) / P`.
    pub fn t_avg(&self) -> f64 {
        if self.num_pes == 0 {
            return 0.0;
        }
        self.total_loads().iter().sum::<f64>() / self.num_pes as f64
    }

    /// Ids of tasks hosted on `pe`, in database order, without building a
    /// `Vec` — the allocation-free twin of [`LbStats::tasks_on`].
    pub fn tasks_on_iter(&self, pe: usize) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.iter().filter(move |t| t.pe == pe).map(|t| t.id)
    }

    /// Ids of tasks hosted on `pe`, in database order.
    pub fn tasks_on(&self, pe: usize) -> Vec<TaskId> {
        self.tasks_on_iter(pe).collect()
    }

    /// Look up a task by id.
    pub fn task(&self, id: TaskId) -> Option<&TaskInfo> {
        self.tasks.iter().find(|t| t.id == id)
    }
}

/// Compressed-sparse-row view of the task communication graph.
///
/// Rows are all task ids in ascending order; `neighbors`/`bytes` pack
/// every adjacency list into two flat arrays indexed by `offsets`. Built
/// once per LB step in O(tasks + edges·log tasks), then every affinity
/// query is a cache-friendly slice walk — no hashing, no per-task `Vec`.
#[derive(Debug, Clone, Default)]
pub struct CommGraph {
    /// Ascending task ids; a task's row index is its position here.
    ids: Vec<TaskId>,
    /// Row `r`'s adjacency occupies `neighbors[offsets[r]..offsets[r+1]]`.
    offsets: Vec<u32>,
    /// Partner *row indices* (not ids), in [`LbStats::comm`] edge order.
    neighbors: Vec<u32>,
    /// Bytes exchanged with the matching `neighbors` entry.
    bytes: Vec<u64>,
}

impl CommGraph {
    /// Build the CSR graph for `stats` (both directions of every edge).
    pub fn build(stats: &LbStats) -> CommGraph {
        let mut ids: Vec<TaskId> = stats.tasks.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        let row = |id: TaskId| -> usize {
            ids.binary_search(&id).expect("comm edge endpoint validated against tasks")
        };

        // Counting sort over rows: count, prefix-sum, scatter.
        let mut offsets = vec![0u32; n + 1];
        for e in &stats.comm {
            offsets[row(e.a) + 1] += 1;
            offsets[row(e.b) + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let total = offsets[n] as usize;
        let mut neighbors = vec![0u32; total];
        let mut bytes = vec![0u64; total];
        let mut cursor = offsets.clone();
        for e in &stats.comm {
            let (ra, rb) = (row(e.a), row(e.b));
            let ca = cursor[ra] as usize;
            neighbors[ca] = rb as u32;
            bytes[ca] = e.bytes;
            cursor[ra] += 1;
            let cb = cursor[rb] as usize;
            neighbors[cb] = ra as u32;
            bytes[cb] = e.bytes;
            cursor[rb] += 1;
        }
        CommGraph { ids, offsets, neighbors, bytes }
    }

    /// Number of rows (= tasks in the snapshot the graph was built from).
    pub fn num_rows(&self) -> usize {
        self.ids.len()
    }

    /// Row index of task `id`, if it was in the snapshot.
    pub fn row_of(&self, id: TaskId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Task id of row `row`.
    pub fn id_of(&self, row: usize) -> TaskId {
        self.ids[row]
    }

    /// Communication partners of `row` as `(partner_row, bytes)`, in
    /// [`LbStats::comm`] edge order.
    pub fn partners(&self, row: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
        let r = self.offsets[row] as usize..self.offsets[row + 1] as usize;
        self.neighbors[r.clone()].iter().zip(&self.bytes[r]).map(|(&p, &b)| (p as usize, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn stats(num_pes: usize, tasks: &[(u64, usize, f64)], bg: &[f64]) -> LbStats {
        let mut s = LbStats::new(num_pes);
        s.tasks = tasks
            .iter()
            .map(|&(id, pe, load)| TaskInfo { id: TaskId(id), pe, load, bytes: 1024 })
            .collect();
        s.bg_load = bg.to_vec();
        s
    }

    #[test]
    fn eq1_average_includes_background() {
        // Two cores: tasks 1.0 + 2.0 on pe0, 1.0 on pe1, plus O_1 = 2.0.
        let s = stats(2, &[(0, 0, 1.0), (1, 0, 2.0), (2, 1, 1.0)], &[0.0, 2.0]);
        assert_eq!(s.task_loads(), vec![3.0, 1.0]);
        assert_eq!(s.total_loads(), vec![3.0, 3.0]);
        assert!((s.t_avg() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lookup_helpers() {
        let s = stats(2, &[(7, 0, 1.0), (8, 1, 2.0)], &[0.0, 0.0]);
        assert_eq!(s.tasks_on(1), vec![TaskId(8)]);
        assert_eq!(s.task(TaskId(7)).unwrap().pe, 0);
        assert!(s.task(TaskId(99)).is_none());
    }

    #[test]
    fn validate_accepts_good_snapshot() {
        stats(3, &[(0, 2, 0.5)], &[0.0, 0.0, 1.0]).validate();
    }

    #[test]
    #[should_panic(expected = "out-of-range pe")]
    fn validate_rejects_bad_pe() {
        stats(2, &[(0, 5, 0.5)], &[0.0, 0.0]).validate();
    }

    #[test]
    #[should_panic(expected = "bg_load length")]
    fn validate_rejects_ragged_bg() {
        stats(3, &[], &[0.0]).validate();
    }

    #[test]
    fn empty_db_is_sane() {
        let s = LbStats::new(0);
        assert_eq!(s.t_avg(), 0.0);
        s.validate();
    }

    #[test]
    fn comm_graph_is_symmetric() {
        let mut s = stats(2, &[(0, 0, 1.0), (1, 1, 1.0), (2, 1, 1.0)], &[0.0, 0.0]);
        s.comm = vec![
            CommEdge { a: TaskId(0), b: TaskId(1), bytes: 100 },
            CommEdge { a: TaskId(1), b: TaskId(2), bytes: 50 },
        ];
        s.validate();
        let g = s.comm_graph();
        assert_eq!(g.num_rows(), 3);
        let adj = |id: u64| -> Vec<(TaskId, u64)> {
            let row = g.row_of(TaskId(id)).unwrap();
            g.partners(row).map(|(p, b)| (g.id_of(p), b)).collect()
        };
        assert_eq!(adj(0), vec![(TaskId(1), 100)]);
        assert_eq!(adj(1), vec![(TaskId(0), 100), (TaskId(2), 50)]);
        assert_eq!(adj(2), vec![(TaskId(1), 50)]);
        assert!(g.row_of(TaskId(99)).is_none());
    }

    #[test]
    fn into_helpers_reuse_buffers_and_match() {
        let s = stats(2, &[(0, 0, 1.0), (1, 0, 2.0), (2, 1, 1.0)], &[0.0, 2.0]);
        // Pre-dirtied, over-sized scratch: the helpers must reset it.
        let mut buf = vec![9.0; 7];
        s.task_loads_into(&mut buf);
        assert_eq!(buf, s.task_loads());
        s.total_loads_into(&mut buf);
        assert_eq!(buf, s.total_loads());
        assert_eq!(s.tasks_on_iter(0).collect::<Vec<_>>(), s.tasks_on(0));
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn comm_edges_must_reference_tasks() {
        let mut s = stats(1, &[(0, 0, 1.0)], &[0.0]);
        s.comm = vec![CommEdge { a: TaskId(0), b: TaskId(9), bytes: 1 }];
        s.validate();
    }

    #[test]
    fn confidence_defaults_to_full() {
        let mut s = stats(2, &[(0, 0, 1.0)], &[0.0, 0.0]);
        assert_eq!(s.confidence_of(0), 1.0);
        assert_eq!(s.mean_confidence(), 1.0);
        s.validate();
        s.confidence = vec![0.5, 1.0];
        s.validate();
        assert_eq!(s.confidence_of(0), 0.5);
        assert!((s.mean_confidence() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confidence length")]
    fn ragged_confidence_rejected() {
        let mut s = stats(2, &[], &[0.0, 0.0]);
        s.confidence = vec![1.0];
        s.validate();
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn out_of_range_confidence_rejected() {
        let mut s = stats(1, &[], &[0.0]);
        s.confidence = vec![1.5];
        s.validate();
    }

    #[test]
    fn failed_tasks_are_advisory_and_validated() {
        let mut s = stats(2, &[(0, 0, 1.0), (1, 1, 1.0)], &[0.0, 0.0]);
        assert!(!s.recently_failed(TaskId(0)));
        s.failed_tasks = vec![TaskId(1)];
        s.validate();
        assert!(s.recently_failed(TaskId(1)));
        assert!(!s.recently_failed(TaskId(0)));
    }

    #[test]
    #[should_panic(expected = "failed_tasks references unknown task")]
    fn unknown_failed_tasks_rejected() {
        let mut s = stats(1, &[(0, 0, 1.0)], &[0.0]);
        s.failed_tasks = vec![TaskId(42)];
        s.validate();
    }

    #[test]
    fn doomed_and_fresh_default_to_false() {
        let mut s = stats(2, &[(0, 0, 1.0)], &[0.0, 0.0]);
        assert!(!s.doomed_of(0) && !s.fresh_of(1));
        s.validate();
        s.doomed = vec![true, false];
        s.fresh = vec![false, true];
        s.validate();
        assert!(s.doomed_of(0) && !s.doomed_of(1));
        assert!(!s.fresh_of(0) && s.fresh_of(1));
        // Out-of-range lookups stay false.
        assert!(!s.doomed_of(9) && !s.fresh_of(9));
    }

    #[test]
    #[should_panic(expected = "doomed length")]
    fn ragged_doomed_mask_rejected() {
        let mut s = stats(2, &[], &[0.0, 0.0]);
        s.doomed = vec![true];
        s.validate();
    }

    #[test]
    #[should_panic(expected = "fresh length")]
    fn ragged_fresh_mask_rejected() {
        let mut s = stats(2, &[], &[0.0, 0.0]);
        s.fresh = vec![true, false, false];
        s.validate();
    }

    #[test]
    #[should_panic(expected = "self-communication")]
    fn self_comm_edges_rejected() {
        let mut s = stats(1, &[(0, 0, 1.0)], &[0.0]);
        s.comm = vec![CommEdge { a: TaskId(0), b: TaskId(0), bytes: 1 }];
        s.validate();
    }
}
