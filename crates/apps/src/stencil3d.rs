//! Stencil3D — a 7-point 3-D Jacobi relaxation, used by the extension
//! experiments (not in the paper's evaluation, but the natural "next
//! workload" its future-work section points toward: more neighbors per
//! chare, larger ghost faces, heavier migration state).

use crate::cost::{chare_jitter, FlopCost};
use crate::grids::Block3D;
use cloudlb_runtime::program::{ChareKernel, IterativeApp};

/// Flops per updated point (6 adds + 1 multiply).
const FLOPS_PER_POINT: f64 = 7.0;

/// The Stencil3D application: a `cx×cy×cz` grid of cubic blocks, each
/// `b³` points.
#[derive(Debug, Clone)]
pub struct Stencil3D {
    /// Chare/cell grid.
    pub cells: Block3D,
    /// Points per block edge.
    pub block: usize,
    /// Flop→seconds model.
    pub cost: FlopCost,
    /// Static per-chare jitter fraction.
    pub jitter_frac: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl Stencil3D {
    /// Custom decomposition.
    pub fn new(cells: Block3D, block: usize) -> Self {
        assert!(block >= 2, "block edge must be >= 2");
        Stencil3D { cells, block, cost: FlopCost::default(), jitter_frac: 0.02, seed: 0x3D3D }
    }

    /// 16 chares per core in a `(4k)×2×2`-ish box of 32³-point blocks.
    pub fn for_pes(pes: usize) -> Self {
        assert!(pes > 0);
        let (cx, cy) = crate::grids::near_square_factors(4 * pes);
        Stencil3D::new(Block3D::new(cx, cy, 4), 32)
    }
}

impl IterativeApp for Stencil3D {
    fn name(&self) -> &'static str {
        "Stencil3D"
    }

    fn num_chares(&self) -> usize {
        self.cells.num_chares()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.cells.neighbors(idx)
    }

    fn message_bytes(&self, _from: usize, _to: usize) -> usize {
        // One face of the block.
        self.block * self.block * std::mem::size_of::<f64>()
    }

    fn state_bytes(&self, _idx: usize) -> usize {
        self.block.pow(3) * std::mem::size_of::<f64>() + 64
    }

    fn task_cost(&self, idx: usize, _iter: usize) -> f64 {
        self.cost.seconds(self.block.pow(3) as f64 * FLOPS_PER_POINT)
            * chare_jitter(self.seed, idx, self.jitter_frac)
    }

    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel> {
        Box::new(Stencil3DKernel::new(self, idx))
    }

    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        let mut k = Stencil3DKernel::new(self, idx);
        let mut r = cloudlb_runtime::pup::PupReader::new(bytes);
        k.u = r.f64s();
        assert_eq!(k.u.len(), self.block.pow(3), "PUP buffer does not match block shape");
        assert!(r.exhausted());
        Some(Box::new(k))
    }
}

/// One cubic block with six face ghosts.
pub struct Stencil3DKernel {
    b: usize,
    u: Vec<f64>,
    scratch: Vec<f64>,
    /// `(neighbor chare, axis 0..3, +1 side?)`.
    faces: Vec<(usize, usize, bool)>,
    ghosts: Vec<Vec<f64>>,
    /// Source block: hottest at the domain origin.
    source: bool,
}

impl Stencil3DKernel {
    fn new(app: &Stencil3D, idx: usize) -> Self {
        let (x, y, z) = app.cells.coords(idx);
        let b = app.block;
        let mut faces = Vec::new();
        let coords = [x, y, z];
        let dims = [app.cells.cx, app.cells.cy, app.cells.cz];
        for axis in 0..3 {
            if coords[axis] > 0 {
                let mut c = coords;
                c[axis] -= 1;
                faces.push((app.cells.index(c[0], c[1], c[2]), axis, false));
            }
            if coords[axis] + 1 < dims[axis] {
                let mut c = coords;
                c[axis] += 1;
                faces.push((app.cells.index(c[0], c[1], c[2]), axis, true));
            }
        }
        let ghosts = faces.iter().map(|_| vec![0.0; b * b]).collect();
        Stencil3DKernel {
            b,
            u: vec![0.0; b * b * b],
            scratch: vec![0.0; b * b * b],
            faces,
            ghosts,
            source: idx == 0,
        }
    }

    #[inline]
    fn at(&self, x: usize, y: usize, z: usize) -> f64 {
        self.u[(z * self.b + y) * self.b + x]
    }

    fn face(&self, axis: usize, plus: bool) -> Vec<f64> {
        let b = self.b;
        let fixed = if plus { b - 1 } else { 0 };
        let mut out = Vec::with_capacity(b * b);
        for i in 0..b {
            for j in 0..b {
                let v = match axis {
                    0 => self.at(fixed, j, i),
                    1 => self.at(j, fixed, i),
                    _ => self.at(j, i, fixed),
                };
                out.push(v);
            }
        }
        out
    }

    fn ghost_at(&self, axis: usize, plus: bool, j: usize, i: usize) -> f64 {
        self.faces
            .iter()
            .position(|&(_, a, p)| a == axis && p == plus)
            .map_or(0.0, |slot| self.ghosts[slot][i * self.b + j])
    }

    fn relax(&mut self) {
        let b = self.b;
        for z in 0..b {
            for y in 0..b {
                for x in 0..b {
                    let c = self.at(x, y, z);
                    let xm = if x > 0 { self.at(x - 1, y, z) } else { self.ghost_at(0, false, y, z) };
                    let xp = if x + 1 < b { self.at(x + 1, y, z) } else { self.ghost_at(0, true, y, z) };
                    let ym = if y > 0 { self.at(x, y - 1, z) } else { self.ghost_at(1, false, x, z) };
                    let yp = if y + 1 < b { self.at(x, y + 1, z) } else { self.ghost_at(1, true, x, z) };
                    let zm = if z > 0 { self.at(x, y, z - 1) } else { self.ghost_at(2, false, x, y) };
                    let zp = if z + 1 < b { self.at(x, y, z + 1) } else { self.ghost_at(2, true, x, y) };
                    self.scratch[(z * b + y) * b + x] = (c + xm + xp + ym + yp + zm + zp) / 7.0;
                }
            }
        }
        std::mem::swap(&mut self.u, &mut self.scratch);
        if self.source {
            // Hold a hot point: keeps the field non-trivial.
            self.u[0] = 1.0;
        }
    }
}

impl ChareKernel for Stencil3DKernel {
    fn compute(&mut self, iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        if iter == 0 && self.source {
            self.u[0] = 1.0;
        }
        if iter > 0 {
            for (from, data) in inbox {
                let slot = self
                    .faces
                    .iter()
                    .position(|&(nb, _, _)| nb == *from)
                    .unwrap_or_else(|| panic!("ghost from non-neighbor {from}"));
                self.ghosts[slot].clone_from(data);
            }
            self.relax();
        }
        self.faces.iter().map(|&(nb, axis, plus)| (nb, self.face(axis, plus))).collect()
    }

    fn checksum(&self) -> f64 {
        self.u.iter().sum()
    }

    fn state_bytes(&self) -> usize {
        self.u.len() * std::mem::size_of::<f64>() + 64
    }

    fn pack(&self) -> Option<Vec<u8>> {
        let mut w = cloudlb_runtime::pup::PupWriter::new();
        w.f64s(&self.u);
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_runtime::program::validate_app;
    use cloudlb_runtime::thread_exec::serial_reference;

    fn tiny() -> Stencil3D {
        Stencil3D::new(Block3D::new(2, 2, 2), 4)
    }

    #[test]
    fn app_is_valid() {
        validate_app(&tiny());
        validate_app(&Stencil3D::for_pes(4));
    }

    #[test]
    fn heat_spreads_from_the_source_block() {
        let app = tiny();
        let sums = serial_reference(&app, 30);
        assert!(sums[&0] > 0.0, "source block holds heat");
        // The far corner receives some energy after 30 sweeps.
        let far = app.cells.index(1, 1, 1);
        assert!(sums[&far] > 0.0, "heat must reach block {far}: {sums:?}");
        // And everything stays bounded by the source value.
        for (c, s) in &sums {
            assert!(*s >= 0.0 && *s <= 64.0, "block {c} out of bounds: {s}");
        }
    }

    #[test]
    fn faces_have_block_squared_points() {
        let app = tiny();
        let mut k = app.make_kernel(0);
        let out = k.compute(0, &[]);
        assert_eq!(out.len(), 3); // corner block: 3 faces
        assert!(out.iter().all(|(_, d)| d.len() == 16));
    }

    #[test]
    fn cost_scales_with_block_volume() {
        let small = Stencil3D::new(Block3D::new(2, 2, 2), 4);
        let big = Stencil3D::new(Block3D::new(2, 2, 2), 8);
        assert!(big.task_cost(0, 0) > 7.0 * small.task_cost(0, 0));
    }
}
