//! Wave2D — "a tightly coupled 5-point stencil application" (paper §IV)
//! solving the 2-D wave equation with leapfrog time stepping:
//!
//! ```text
//! u_next = 2·u − u_prev + c²·(Δt/Δx)² · ∇²u
//! ```
//!
//! This is the app the paper uses for its timeline figures (1 and 3) *and*
//! as the interfering background job. The decomposition mirrors
//! [`Jacobi2D`](crate::jacobi2d::Jacobi2D) but each point costs more flops
//! and carries two state planes.

use crate::cost::{chare_jitter, FlopCost};
use crate::grids::{near_square_factors, Block2D};
use cloudlb_runtime::program::{ChareKernel, IterativeApp};

/// Flops per updated point (laplacian + leapfrog combine).
const FLOPS_PER_POINT: f64 = 8.0;
/// Courant factor `(c·Δt/Δx)²`; < 0.5 keeps the scheme stable in 2-D.
const COURANT2: f64 = 0.25;

/// The Wave2D application.
#[derive(Debug, Clone)]
pub struct Wave2D {
    /// Decomposition of the global grid.
    pub grid: Block2D,
    /// Flop→seconds model for the simulator.
    pub cost: FlopCost,
    /// Static per-chare speed jitter fraction.
    pub jitter_frac: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl Wave2D {
    /// Custom decomposition.
    pub fn new(grid: Block2D) -> Self {
        Wave2D { grid, cost: FlopCost::default(), jitter_frac: 0.02, seed: 0x2AFE }
    }

    /// Paper-style sizing: 16 chares per core, 160×160 points per block.
    pub fn for_pes(pes: usize) -> Self {
        assert!(pes > 0);
        let (cx, cy) = near_square_factors(16 * pes);
        Wave2D::new(Block2D::new(cx * 160, cy * 160, cx, cy))
    }
}

impl IterativeApp for Wave2D {
    fn name(&self) -> &'static str {
        "Wave2D"
    }

    fn num_chares(&self) -> usize {
        self.grid.num_chares()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.grid.neighbors(idx)
    }

    fn message_bytes(&self, from: usize, to: usize) -> usize {
        self.grid.face_len(from, to) * std::mem::size_of::<f64>()
    }

    fn state_bytes(&self, idx: usize) -> usize {
        let (_, w, _, h) = self.grid.extent(idx);
        2 * w * h * std::mem::size_of::<f64>() + 64
    }

    fn task_cost(&self, idx: usize, _iter: usize) -> f64 {
        let (_, w, _, h) = self.grid.extent(idx);
        self.cost.seconds((w * h) as f64 * FLOPS_PER_POINT)
            * chare_jitter(self.seed, idx, self.jitter_frac)
    }

    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel> {
        Box::new(WaveKernel::new(self.grid, idx))
    }

    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        let mut k = WaveKernel::new(self.grid, idx);
        let mut r = cloudlb_runtime::pup::PupReader::new(bytes);
        k.u = r.f64s();
        k.u_prev = r.f64s();
        assert_eq!(k.u.len(), k.w * k.h, "PUP buffer does not match block shape");
        assert_eq!(k.u_prev.len(), k.w * k.h);
        assert!(r.exhausted());
        Some(Box::new(k))
    }
}

/// Live state of one Wave2D block: two time planes plus ghosts.
pub struct WaveKernel {
    w: usize,
    h: usize,
    u: Vec<f64>,
    u_prev: Vec<f64>,
    scratch: Vec<f64>,
    sides: Vec<(usize, SideW)>,
    ghosts: Vec<Vec<f64>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SideW {
    West,
    East,
    North,
    South,
}

impl WaveKernel {
    /// Build chare `idx`'s block with a Gaussian pulse centered in the
    /// global domain.
    pub fn new(grid: Block2D, idx: usize) -> Self {
        let (bx, by) = grid.coords(idx);
        let (x0, w, y0, h) = grid.extent(idx);
        let mut sides = Vec::new();
        if bx > 0 {
            sides.push((grid.index(bx - 1, by), SideW::West));
        }
        if bx + 1 < grid.cx {
            sides.push((grid.index(bx + 1, by), SideW::East));
        }
        if by > 0 {
            sides.push((grid.index(bx, by - 1), SideW::North));
        }
        if by + 1 < grid.cy {
            sides.push((grid.index(bx, by + 1), SideW::South));
        }
        let ghosts = sides
            .iter()
            .map(|&(_, s)| match s {
                SideW::West | SideW::East => vec![0.0; h],
                SideW::North | SideW::South => vec![0.0; w],
            })
            .collect();

        // Initial condition: a Gaussian displacement pulse at the global
        // domain center, zero initial velocity (u_prev = u).
        let (gx, gy) = (grid.nx as f64 / 2.0, grid.ny as f64 / 2.0);
        let sigma2 = (grid.nx.min(grid.ny) as f64 / 16.0).powi(2);
        let mut u = vec![0.0; w * h];
        for y in 0..h {
            for x in 0..w {
                let dx = (x0 + x) as f64 - gx;
                let dy = (y0 + y) as f64 - gy;
                u[y * w + x] = (-(dx * dx + dy * dy) / (2.0 * sigma2)).exp();
            }
        }
        WaveKernel { w, h, u_prev: u.clone(), scratch: vec![0.0; w * h], u, sides, ghosts }
    }

    fn edge(&self, side: SideW) -> Vec<f64> {
        match side {
            SideW::West => (0..self.h).map(|y| self.u[y * self.w]).collect(),
            SideW::East => (0..self.h).map(|y| self.u[y * self.w + self.w - 1]).collect(),
            SideW::North => self.u[..self.w].to_vec(),
            SideW::South => self.u[(self.h - 1) * self.w..].to_vec(),
        }
    }

    fn ghost(&self, side: SideW) -> Option<&[f64]> {
        self.sides
            .iter()
            .position(|&(_, s)| s == side)
            .map(|i| self.ghosts[i].as_slice())
    }

    fn step(&mut self) {
        let (w, h) = (self.w, self.h);
        for y in 0..h {
            for x in 0..w {
                let c = self.u[y * w + x];
                let west = if x > 0 {
                    self.u[y * w + x - 1]
                } else {
                    self.ghost(SideW::West).map_or(0.0, |g| g[y])
                };
                let east = if x + 1 < w {
                    self.u[y * w + x + 1]
                } else {
                    self.ghost(SideW::East).map_or(0.0, |g| g[y])
                };
                let north = if y > 0 {
                    self.u[(y - 1) * w + x]
                } else {
                    self.ghost(SideW::North).map_or(0.0, |g| g[x])
                };
                let south = if y + 1 < h {
                    self.u[(y + 1) * w + x]
                } else {
                    self.ghost(SideW::South).map_or(0.0, |g| g[x])
                };
                let lap = west + east + north + south - 4.0 * c;
                self.scratch[y * w + x] = 2.0 * c - self.u_prev[y * w + x] + COURANT2 * lap;
            }
        }
        std::mem::swap(&mut self.u_prev, &mut self.u);
        std::mem::swap(&mut self.u, &mut self.scratch);
    }
}

impl ChareKernel for WaveKernel {
    fn compute(&mut self, iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        if iter > 0 {
            for (from, data) in inbox {
                let slot = self
                    .sides
                    .iter()
                    .position(|&(nb, _)| nb == *from)
                    .unwrap_or_else(|| panic!("ghost from non-neighbor {from}"));
                self.ghosts[slot].clone_from(data);
            }
            self.step();
        }
        self.sides.iter().map(|&(nb, side)| (nb, self.edge(side))).collect()
    }

    fn checksum(&self) -> f64 {
        // Sum of both planes: sensitive to any state corruption.
        self.u.iter().sum::<f64>() + self.u_prev.iter().sum::<f64>()
    }

    fn state_bytes(&self) -> usize {
        2 * self.u.len() * std::mem::size_of::<f64>() + 64
    }

    fn pack(&self) -> Option<Vec<u8>> {
        let mut w = cloudlb_runtime::pup::PupWriter::new();
        w.f64s(&self.u).f64s(&self.u_prev);
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_runtime::program::validate_app;
    use cloudlb_runtime::thread_exec::serial_reference;

    fn small() -> Wave2D {
        Wave2D::new(Block2D::new(32, 32, 4, 2))
    }

    #[test]
    fn app_is_valid() {
        validate_app(&small());
        validate_app(&Wave2D::for_pes(8));
    }

    #[test]
    fn wave_propagates_outward() {
        let app = small();
        let before = serial_reference(&app, 1);
        let after = serial_reference(&app, 30);
        // The pulse starts centered (chares 1,2,5,6 carry it); after 30
        // steps energy reaches the corner blocks.
        let corner_before = before[&0].abs() + before[&7].abs();
        let corner_after = after[&0].abs() + after[&7].abs();
        assert!(
            corner_after > corner_before,
            "corners before {corner_before}, after {corner_after}"
        );
    }

    #[test]
    fn scheme_is_stable() {
        // Bounded checksums after many steps (Courant condition holds).
        let app = small();
        let sums = serial_reference(&app, 200);
        for (chare, s) in sums {
            assert!(s.is_finite() && s.abs() < 1e6, "chare {chare} diverged: {s}");
        }
    }

    #[test]
    fn wave_costs_exceed_jacobi_costs() {
        // Same grid → Wave2D does more flops per point.
        let w = Wave2D::new(Block2D::new(24, 24, 3, 3));
        let j = crate::jacobi2d::Jacobi2D::new(Block2D::new(24, 24, 3, 3));
        // Compare de-jittered costs.
        let wc = w.task_cost(0, 0) / crate::cost::chare_jitter(w.seed, 0, w.jitter_frac);
        let jc = j.task_cost(0, 0) / crate::cost::chare_jitter(j.seed, 0, j.jitter_frac);
        assert!(wc > jc);
    }

    #[test]
    fn state_includes_two_planes() {
        let app = small();
        assert_eq!(app.state_bytes(0), 2 * 8 * 16 * 8 + 64);
    }
}
