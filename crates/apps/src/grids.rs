//! Block decomposition helpers for 2-D and 3-D chare arrays.
//!
//! The paper's stencil applications decompose a global grid into a 2-D
//! array of chares (several per core); Mol3D decomposes 3-D space into
//! cells. These helpers own the index arithmetic: chare linearization,
//! block extents (with remainders spread evenly), and face-neighbor
//! topology (no wraparound — physical domains have boundaries).

/// Split `points` into `chunks` contiguous ranges whose lengths differ by
/// at most one. Returns `(start, len)` per chunk.
pub fn decompose(points: usize, chunks: usize) -> Vec<(usize, usize)> {
    assert!(chunks > 0 && points >= chunks, "cannot split {points} points into {chunks}");
    (0..chunks).map(|c| chunk_range(points, chunks, c)).collect()
}

/// Closed-form `(start, len)` of chunk `c` in the [`decompose`] split —
/// the first `points % chunks` chunks carry one extra point, so chunk `c`
/// starts after `c` base-sized chunks plus `min(c, extra)` spread
/// remainders. Lets per-chare extent queries run without materializing
/// the whole split (a 1M-chare grid would otherwise allocate two vectors
/// per extent call).
pub fn chunk_range(points: usize, chunks: usize, c: usize) -> (usize, usize) {
    debug_assert!(c < chunks);
    let base = points / chunks;
    let extra = points % chunks;
    (c * base + c.min(extra), base + usize::from(c < extra))
}

/// A 2-D grid of `nx × ny` points split into `cx × cy` chare blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block2D {
    /// Global points in x.
    pub nx: usize,
    /// Global points in y.
    pub ny: usize,
    /// Chare blocks in x.
    pub cx: usize,
    /// Chare blocks in y.
    pub cy: usize,
}

impl Block2D {
    /// Construct, validating that every block is nonempty.
    pub fn new(nx: usize, ny: usize, cx: usize, cy: usize) -> Self {
        assert!(cx > 0 && cy > 0 && nx >= cx && ny >= cy, "degenerate {nx}x{ny} / {cx}x{cy}");
        Block2D { nx, ny, cx, cy }
    }

    /// Number of chares.
    pub fn num_chares(&self) -> usize {
        self.cx * self.cy
    }

    /// Linear chare index of block `(bx, by)`.
    pub fn index(&self, bx: usize, by: usize) -> usize {
        debug_assert!(bx < self.cx && by < self.cy);
        by * self.cx + bx
    }

    /// Block coordinates of chare `idx`.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        debug_assert!(idx < self.num_chares());
        (idx % self.cx, idx / self.cx)
    }

    /// Point extent of chare `idx`: `(x0, width, y0, height)`.
    pub fn extent(&self, idx: usize) -> (usize, usize, usize, usize) {
        let (bx, by) = self.coords(idx);
        let (x0, w) = chunk_range(self.nx, self.cx, bx);
        let (y0, h) = chunk_range(self.ny, self.cy, by);
        (x0, w, y0, h)
    }

    /// Face neighbors (west, east, north, south — those that exist).
    pub fn neighbors(&self, idx: usize) -> Vec<usize> {
        let (bx, by) = self.coords(idx);
        let mut out = Vec::with_capacity(4);
        if bx > 0 {
            out.push(self.index(bx - 1, by));
        }
        if bx + 1 < self.cx {
            out.push(self.index(bx + 1, by));
        }
        if by > 0 {
            out.push(self.index(bx, by - 1));
        }
        if by + 1 < self.cy {
            out.push(self.index(bx, by + 1));
        }
        out
    }

    /// Length (in points) of the face shared with neighbor `nb`; panics if
    /// `nb` is not a face neighbor of `idx`.
    pub fn face_len(&self, idx: usize, nb: usize) -> usize {
        let (bx, by) = self.coords(idx);
        let (nbx, nby) = self.coords(nb);
        let (_, w, _, h) = self.extent(idx);
        if by == nby && (nbx + 1 == bx || bx + 1 == nbx) {
            h
        } else if bx == nbx && (nby + 1 == by || by + 1 == nby) {
            w
        } else {
            panic!("{nb} is not a face neighbor of {idx}")
        }
    }
}

/// A 3-D grid of cells `cx × cy × cz` (unit cells; used by Mol3D and
/// Stencil3D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block3D {
    /// Cells in x.
    pub cx: usize,
    /// Cells in y.
    pub cy: usize,
    /// Cells in z.
    pub cz: usize,
}

impl Block3D {
    /// Construct a nonempty cell grid.
    pub fn new(cx: usize, cy: usize, cz: usize) -> Self {
        assert!(cx > 0 && cy > 0 && cz > 0);
        Block3D { cx, cy, cz }
    }

    /// Number of cells.
    pub fn num_chares(&self) -> usize {
        self.cx * self.cy * self.cz
    }

    /// Linear index of cell `(x, y, z)`.
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.cx && y < self.cy && z < self.cz);
        (z * self.cy + y) * self.cx + x
    }

    /// Cell coordinates of `idx`.
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.cx;
        let y = (idx / self.cx) % self.cy;
        let z = idx / (self.cx * self.cy);
        (x, y, z)
    }

    /// Face neighbors (up to 6).
    pub fn neighbors(&self, idx: usize) -> Vec<usize> {
        let (x, y, z) = self.coords(idx);
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push(self.index(x - 1, y, z));
        }
        if x + 1 < self.cx {
            out.push(self.index(x + 1, y, z));
        }
        if y > 0 {
            out.push(self.index(x, y - 1, z));
        }
        if y + 1 < self.cy {
            out.push(self.index(x, y + 1, z));
        }
        if z > 0 {
            out.push(self.index(x, y, z - 1));
        }
        if z + 1 < self.cz {
            out.push(self.index(x, y, z + 1));
        }
        out
    }
}

/// Pick a near-square 2-D factorization `cx × cy = n` with `cx >= cy`.
pub fn near_square_factors(n: usize) -> (usize, usize) {
    assert!(n > 0);
    let mut best = (n, 1);
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            best = (n / d, d);
        }
        d += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decompose_covers_exactly() {
        let parts = decompose(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 3), (7, 3)]);
        let total: usize = parts.iter().map(|p| p.1).sum();
        assert_eq!(total, 10);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn decompose_rejects_too_many_chunks() {
        decompose(2, 3);
    }

    #[test]
    fn chunk_range_matches_decompose() {
        for (points, chunks) in [(10, 3), (101, 4), (53, 53), (1 << 15, 1 << 10)] {
            let full = decompose(points, chunks);
            for (c, &want) in full.iter().enumerate() {
                assert_eq!(chunk_range(points, chunks, c), want, "{points}/{chunks} chunk {c}");
            }
        }
    }

    #[test]
    fn block2d_roundtrip_and_neighbors() {
        let g = Block2D::new(100, 80, 4, 3);
        assert_eq!(g.num_chares(), 12);
        for idx in 0..12 {
            let (bx, by) = g.coords(idx);
            assert_eq!(g.index(bx, by), idx);
            for nb in g.neighbors(idx) {
                assert!(g.neighbors(nb).contains(&idx), "asymmetric {idx}<->{nb}");
            }
        }
        // Corner has 2 neighbors, interior has 4.
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(g.index(1, 1)).len(), 4);
    }

    #[test]
    fn block2d_extents_tile_the_domain() {
        let g = Block2D::new(101, 53, 4, 3);
        let mut area = 0;
        for idx in 0..g.num_chares() {
            let (_, w, _, h) = g.extent(idx);
            area += w * h;
        }
        assert_eq!(area, 101 * 53);
    }

    #[test]
    fn face_lengths_match_shared_edges() {
        let g = Block2D::new(64, 64, 2, 2);
        let a = g.index(0, 0);
        let e = g.index(1, 0); // east neighbor
        let s = g.index(0, 1); // south neighbor
        assert_eq!(g.face_len(a, e), 32); // vertical face: height
        assert_eq!(g.face_len(a, s), 32); // horizontal face: width
    }

    #[test]
    #[should_panic(expected = "not a face neighbor")]
    fn face_len_rejects_diagonal() {
        let g = Block2D::new(64, 64, 2, 2);
        g.face_len(g.index(0, 0), g.index(1, 1));
    }

    #[test]
    fn block3d_roundtrip_and_neighbors() {
        let g = Block3D::new(3, 4, 5);
        assert_eq!(g.num_chares(), 60);
        for idx in 0..60 {
            let (x, y, z) = g.coords(idx);
            assert_eq!(g.index(x, y, z), idx);
            for nb in g.neighbors(idx) {
                assert!(g.neighbors(nb).contains(&idx));
            }
        }
        assert_eq!(g.neighbors(0).len(), 3);
        assert_eq!(g.neighbors(g.index(1, 1, 1)).len(), 6);
    }

    #[test]
    fn near_square() {
        assert_eq!(near_square_factors(16), (4, 4));
        assert_eq!(near_square_factors(48), (8, 6));
        assert_eq!(near_square_factors(7), (7, 1));
        assert_eq!(near_square_factors(1), (1, 1));
    }
}
