//! Mol3D — "a classical molecular dynamics code" (paper §V).
//!
//! Space is decomposed into a 3-D grid of unit cells, one chare per cell.
//! Each cell owns a set of Lennard-Jones particles; every iteration it
//! exchanges particle positions with its six face-neighbor cells, computes
//! short-range LJ forces from its own and neighboring particles, and
//! advances velocities/positions (velocity-Verlet style with reflective
//! cell walls, so ownership stays static — a deliberate mini-MD
//! simplification documented in DESIGN.md).
//!
//! Two properties matter to the load balancer and match real MD:
//! * **inherent imbalance** — particle counts follow a density gradient
//!   across x, so per-cell costs differ by up to ~4× (cost ∝ n·(n+Σn_nb));
//! * **communication weight** — messages carry whole particle sets, not
//!   thin block edges, making migration and latency costlier (the paper's
//!   Mol3D is the most interference-sensitive application).

use crate::cost::{chare_jitter, FlopCost};
use crate::grids::Block3D;
use cloudlb_runtime::program::{ChareKernel, IterativeApp};
use cloudlb_sim::SimRng;

/// Flops charged per particle pair examined.
const FLOPS_PER_PAIR: f64 = 45.0;
/// LJ interaction cutoff (cell units; cells have unit extent).
const CUTOFF2: f64 = 0.64;
/// LJ energy scale (small: keeps the explicit integrator stable).
const EPSILON: f64 = 1e-4;
/// LJ length scale σ².
const SIGMA2: f64 = 0.04;
/// Integration step.
const DT: f64 = 1e-3;
/// Minimum r² in the force law (avoids the 1/r¹⁴ singularity).
const MIN_R2: f64 = 1e-3;

/// The Mol3D application.
#[derive(Debug, Clone)]
pub struct Mol3D {
    /// The cell grid.
    pub cells: Block3D,
    /// Particles per cell (inherent imbalance lives here).
    pub particles: Vec<usize>,
    /// Flop→seconds model.
    pub cost: FlopCost,
    /// Static per-chare speed jitter fraction.
    pub jitter_frac: f64,
    /// Seed for particle initialization and jitter.
    pub seed: u64,
}

impl Mol3D {
    /// Build with a linear density gradient along x: cells range from
    /// `base` to `2·base` particles.
    pub fn with_gradient(cells: Block3D, base: usize) -> Self {
        assert!(base >= 2, "need at least two particles per cell");
        let particles = (0..cells.num_chares())
            .map(|idx| {
                let (x, _, _) = cells.coords(idx);
                base + base * x / cells.cx.max(1)
            })
            .collect();
        Mol3D { cells, particles, cost: FlopCost::default(), jitter_frac: 0.02, seed: 0x301D }
    }

    /// Paper-style sizing for `pes` cores: 16 cells per core in a
    /// `(4·k) × 2 × 2`-ish box, ~48–96 particles per cell.
    pub fn for_pes(pes: usize) -> Self {
        assert!(pes > 0);
        // 16·pes cells: fix z = 4, near-square the rest.
        let rest = 4 * pes;
        let (cx, cy) = crate::grids::near_square_factors(rest);
        Mol3D::with_gradient(Block3D::new(cx, cy, 4), 48)
    }

    /// Pairs examined by cell `idx` per iteration: own×(own + neighbors).
    fn pairs(&self, idx: usize) -> f64 {
        let own = self.particles[idx] as f64;
        let nb: usize = self.cells.neighbors(idx).iter().map(|&j| self.particles[j]).sum();
        own * (own + nb as f64)
    }
}

impl IterativeApp for Mol3D {
    fn name(&self) -> &'static str {
        "Mol3D"
    }

    fn num_chares(&self) -> usize {
        self.cells.num_chares()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.cells.neighbors(idx)
    }

    fn message_bytes(&self, from: usize, _to: usize) -> usize {
        // Positions of every owned particle: 3 × f64.
        self.particles[from] * 3 * std::mem::size_of::<f64>()
    }

    fn state_bytes(&self, idx: usize) -> usize {
        // Positions + velocities + bookkeeping.
        self.particles[idx] * 6 * std::mem::size_of::<f64>() + 128
    }

    fn task_cost(&self, idx: usize, _iter: usize) -> f64 {
        self.cost.seconds(self.pairs(idx) * FLOPS_PER_PAIR)
            * chare_jitter(self.seed, idx, self.jitter_frac)
    }

    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel> {
        Box::new(MolKernel::new(self, idx))
    }

    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        let mut k = MolKernel::new(self, idx);
        let mut r = cloudlb_runtime::pup::PupReader::new(bytes);
        let pos = r.f64s();
        let vel = r.f64s();
        assert_eq!(pos.len(), self.particles[idx] * 3, "PUP particle count mismatch");
        assert_eq!(vel.len(), self.particles[idx] * 3);
        k.pos = pos.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
        k.vel = vel.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
        assert!(r.exhausted());
        Some(Box::new(k))
    }
}

/// Live state of one cell: its particles.
pub struct MolKernel {
    /// Cell origin in space (cells are unit cubes).
    origin: [f64; 3],
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    neighbors: Vec<usize>,
}

impl MolKernel {
    fn new(app: &Mol3D, idx: usize) -> Self {
        let (x, y, z) = app.cells.coords(idx);
        let origin = [x as f64, y as f64, z as f64];
        let n = app.particles[idx];
        let mut rng = SimRng::new(app.seed ^ (idx as u64).wrapping_mul(0x9E3779B97F4A7C15));
        let pos = (0..n)
            .map(|_| {
                [
                    origin[0] + rng.range_f64(0.05, 0.95),
                    origin[1] + rng.range_f64(0.05, 0.95),
                    origin[2] + rng.range_f64(0.05, 0.95),
                ]
            })
            .collect();
        let vel = (0..n)
            .map(|_| {
                [
                    rng.normal(0.0, 0.05),
                    rng.normal(0.0, 0.05),
                    rng.normal(0.0, 0.05),
                ]
            })
            .collect();
        MolKernel { origin, pos, vel, neighbors: app.cells.neighbors(idx) }
    }

    fn flatten(&self) -> Vec<f64> {
        self.pos.iter().flat_map(|p| p.iter().copied()).collect()
    }

    /// Accumulate the LJ force on `p` from source point `q`.
    fn lj_force(p: &[f64; 3], q: &[f64; 3], f: &mut [f64; 3]) {
        let d = [p[0] - q[0], p[1] - q[1], p[2] - q[2]];
        let r2 = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).max(MIN_R2);
        if r2 >= CUTOFF2 {
            return;
        }
        let s2 = SIGMA2 / r2;
        let s6 = s2 * s2 * s2;
        // F = 24ε(2·s¹² − s⁶)/r² · d
        let mag = 24.0 * EPSILON * (2.0 * s6 * s6 - s6) / r2;
        f[0] += mag * d[0];
        f[1] += mag * d[1];
        f[2] += mag * d[2];
    }

    fn step(&mut self, ghost_positions: &[[f64; 3]]) {
        let n = self.pos.len();
        let mut forces = vec![[0.0f64; 3]; n];
        for (i, fi) in forces.iter_mut().enumerate() {
            let pi = self.pos[i];
            for (j, pj) in self.pos.iter().enumerate() {
                if i != j {
                    Self::lj_force(&pi, pj, fi);
                }
            }
            for q in ghost_positions {
                Self::lj_force(&pi, q, fi);
            }
        }
        for ((pos, vel), force) in self.pos.iter_mut().zip(&mut self.vel).zip(&forces) {
            for k in 0..3 {
                vel[k] += DT * force[k];
                pos[k] += DT * vel[k];
                // Reflect at the cell walls (keeps ownership static).
                let lo = self.origin[k];
                let hi = lo + 1.0;
                if pos[k] < lo {
                    pos[k] = 2.0 * lo - pos[k];
                    vel[k] = -vel[k];
                } else if pos[k] > hi {
                    pos[k] = 2.0 * hi - pos[k];
                    vel[k] = -vel[k];
                }
            }
        }
    }
}

impl ChareKernel for MolKernel {
    fn compute(&mut self, iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        if iter > 0 {
            // Deterministic force order: sort ghosts by sender.
            let mut entries: Vec<&(usize, Vec<f64>)> = inbox.iter().collect();
            entries.sort_by_key(|e| e.0);
            let mut ghosts = Vec::new();
            for (_, data) in entries {
                for c in data.chunks_exact(3) {
                    ghosts.push([c[0], c[1], c[2]]);
                }
            }
            self.step(&ghosts);
        }
        let flat = self.flatten();
        self.neighbors.iter().map(|&nb| (nb, flat.clone())).collect()
    }

    fn checksum(&self) -> f64 {
        self.pos.iter().chain(self.vel.iter()).flat_map(|v| v.iter()).sum()
    }

    fn state_bytes(&self) -> usize {
        self.pos.len() * 6 * std::mem::size_of::<f64>() + 128
    }

    fn pack(&self) -> Option<Vec<u8>> {
        let mut w = cloudlb_runtime::pup::PupWriter::new();
        let flat = |v: &Vec<[f64; 3]>| v.iter().flat_map(|p| p.iter().copied()).collect::<Vec<_>>();
        w.f64s(&flat(&self.pos)).f64s(&flat(&self.vel));
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_runtime::program::validate_app;
    use cloudlb_runtime::thread_exec::serial_reference;

    fn tiny() -> Mol3D {
        Mol3D::with_gradient(Block3D::new(3, 2, 2), 4)
    }

    #[test]
    fn app_is_valid_and_imbalanced() {
        let app = tiny();
        validate_app(&app);
        // Density gradient → rightmost cells cost more.
        let left = app.task_cost(app.cells.index(0, 0, 0), 0);
        let right = app.task_cost(app.cells.index(2, 0, 0), 0);
        assert!(right > 1.3 * left, "left {left}, right {right}");
    }

    #[test]
    fn for_pes_shapes() {
        let app = Mol3D::for_pes(4);
        validate_app(&app);
        assert_eq!(app.num_chares(), 64);
        assert!(app.particles.iter().all(|&n| (48..=96).contains(&n)));
    }

    #[test]
    fn particles_stay_in_their_cells() {
        let app = tiny();
        let mut k = MolKernel::new(&app, 0);
        let before = k.pos.clone();
        for iter in 0..50 {
            k.compute(iter, &[]);
        }
        for p in &k.pos {
            for d in 0..3 {
                assert!(
                    p[d] >= k.origin[d] - 1e-9 && p[d] <= k.origin[d] + 1.0 + 1e-9,
                    "escaped: {p:?} from {:?}",
                    k.origin
                );
            }
        }
        assert_ne!(before, k.pos, "particles must move");
    }

    #[test]
    fn dynamics_are_stable_and_deterministic() {
        let app = tiny();
        let a = serial_reference(&app, 20);
        let b = serial_reference(&app, 20);
        assert_eq!(a, b);
        for (c, s) in a {
            assert!(s.is_finite(), "cell {c} diverged");
        }
    }

    #[test]
    fn message_bytes_track_particle_counts() {
        let app = tiny();
        let i = app.cells.index(0, 0, 0);
        let j = app.cells.index(2, 0, 0);
        let nb_i = app.neighbors(i)[0];
        let nb_j = app.neighbors(j)[0];
        assert!(app.message_bytes(j, nb_j) > app.message_bytes(i, nb_i));
    }

    #[test]
    fn cutoff_limits_forces() {
        let mut f = [0.0; 3];
        MolKernel::lj_force(&[0.0, 0.0, 0.0], &[2.0, 0.0, 0.0], &mut f);
        assert_eq!(f, [0.0, 0.0, 0.0], "beyond cutoff");
        MolKernel::lj_force(&[0.0, 0.0, 0.0], &[0.1, 0.0, 0.0], &mut f);
        assert!(f[0] != 0.0, "inside cutoff");
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
