//! Cost models mapping kernel work to simulated CPU seconds.
//!
//! The simulator needs each task's CPU demand without running the kernel.
//! We count the kernel's floating-point operations and apply a fixed
//! effective rate. The default rate (0.8 GFLOP/s per core) is calibrated
//! to the paper's era — a 2.4 GHz Xeon X3430 core running a memory-bound
//! stencil sustains well under its peak. The load balancer only ever sees
//! *relative* loads, so the absolute rate sets the time scale, not the
//! figures' shape.

use cloudlb_sim::SimRng;

/// Flop-count → seconds conversion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlopCost {
    /// Effective sustained rate, flops per second.
    pub flops_per_sec: f64,
}

impl Default for FlopCost {
    fn default() -> Self {
        FlopCost { flops_per_sec: 0.8e9 }
    }
}

impl FlopCost {
    /// Seconds needed for `flops` floating-point operations.
    pub fn seconds(&self, flops: f64) -> f64 {
        assert!(flops >= 0.0);
        flops / self.flops_per_sec
    }
}

/// Deterministic per-chare speed jitter: a multiplicative factor in
/// `[1 − frac, 1 + frac]`, stable for a `(seed, chare)` pair. Models the
/// small static heterogeneity real runs always show without breaking
/// reproducibility.
pub fn chare_jitter(seed: u64, chare: usize, frac: f64) -> f64 {
    assert!((0.0..1.0).contains(&frac), "jitter fraction {frac}");
    if frac == 0.0 {
        return 1.0;
    }
    let mut rng = SimRng::new(seed ^ (chare as u64).wrapping_mul(0x9E3779B97F4A7C15));
    1.0 + frac * (2.0 * rng.f64() - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_scale_linearly() {
        let c = FlopCost::default();
        assert!((c.seconds(0.8e9) - 1.0).abs() < 1e-12);
        assert!((c.seconds(8e6) - 0.01).abs() < 1e-12);
        assert_eq!(c.seconds(0.0), 0.0);
    }

    #[test]
    fn jitter_is_stable_and_bounded() {
        for chare in 0..100 {
            let a = chare_jitter(7, chare, 0.05);
            let b = chare_jitter(7, chare, 0.05);
            assert_eq!(a, b);
            assert!((0.95..=1.05).contains(&a), "{a}");
        }
    }

    #[test]
    fn jitter_differs_across_chares_and_seeds() {
        assert_ne!(chare_jitter(1, 0, 0.1), chare_jitter(1, 1, 0.1));
        assert_ne!(chare_jitter(1, 0, 0.1), chare_jitter(2, 0, 0.1));
        assert_eq!(chare_jitter(1, 0, 0.0), 1.0);
    }
}
