#![warn(missing_docs)]
//! The paper's three evaluation applications, implemented as chare-array
//! programs for the `cloudlb-runtime`:
//!
//! * [`Jacobi2D`] — "a canonical benchmark that
//!   iteratively applies a 5-point stencil over a 2D grid of points";
//! * [`Wave2D`] — "a tightly coupled 5-point stencil
//!   application" solving the 2-D wave equation (the app used in the
//!   paper's Figures 1 and 3 and as the interfering background job);
//! * [`Mol3D`] — "a classical molecular dynamics code":
//!   cell-decomposed Lennard-Jones particles with reflective-wall
//!   integration, giving naturally imbalanced, communication-heavier
//!   tasks;
//!
//! plus [`Stencil3D`], a 7-point 3-D stencil used by
//! the extension experiments.
//!
//! Every app provides both the real numerical kernel (thread executor,
//! correctness tests) and a calibrated cost model (deterministic
//! simulator). Costs are derived from the kernel's floating-point
//! operation count at a fixed effective rate, so relative task weights —
//! the only thing the load balancer observes — match the real kernels.

pub mod cost;
pub mod grids;
pub mod jacobi2d;
pub mod mol3d;
pub mod stencil3d;
pub mod wave2d;

pub use jacobi2d::Jacobi2D;
pub use mol3d::Mol3D;
pub use stencil3d::Stencil3D;
pub use wave2d::Wave2D;

/// The paper's applications by name, with a decomposition sized for `pes`
/// cores (the over-decomposition the paper prescribes). Panics on unknown
/// names; recognized: `jacobi2d`, `wave2d`, `mol3d`, `stencil3d`.
pub fn by_name(name: &str, pes: usize) -> Box<dyn cloudlb_runtime::IterativeApp> {
    match name.to_ascii_lowercase().as_str() {
        "jacobi2d" => Box::new(Jacobi2D::for_pes(pes)),
        "wave2d" => Box::new(Wave2D::for_pes(pes)),
        "mol3d" => Box::new(Mol3D::for_pes(pes)),
        "stencil3d" => Box::new(Stencil3D::for_pes(pes)),
        other => panic!("unknown application {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use cloudlb_runtime::program::validate_app;

    #[test]
    fn registry_builds_all_apps() {
        for name in ["jacobi2d", "wave2d", "mol3d", "stencil3d"] {
            let app = super::by_name(name, 4);
            validate_app(app.as_ref());
            assert!(app.num_chares() >= 4 * 8, "{name} under-decomposed");
        }
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn registry_rejects_unknown() {
        super::by_name("nope", 4);
    }
}
