//! Jacobi2D — "a canonical benchmark that iteratively applies a 5-point
//! stencil over a 2D grid of points" (paper §V).
//!
//! The global `nx × ny` grid is split into `cx × cy` chare blocks. Each
//! iteration a block exchanges edge ghosts with its face neighbors and
//! relaxes `u ← ⅕(u + west + east + north + south)` with Dirichlet
//! boundaries (the global west edge held at 1.0, every other edge at 0).
//! Iteration 0 is the ghost bootstrap: blocks publish their edges and do
//! not update.

use crate::cost::{chare_jitter, FlopCost};
use crate::grids::{near_square_factors, Block2D};
use cloudlb_runtime::program::{ChareKernel, IterativeApp};

/// Boundary value on the global west edge (drives a non-trivial solution).
const WEST_BC: f64 = 1.0;
/// Flops per updated grid point (4 adds + 1 multiply).
const FLOPS_PER_POINT: f64 = 5.0;

/// The Jacobi2D application.
#[derive(Debug, Clone)]
pub struct Jacobi2D {
    /// Decomposition of the global grid.
    pub grid: Block2D,
    /// Flop→seconds model for the simulator.
    pub cost: FlopCost,
    /// Static per-chare speed jitter fraction.
    pub jitter_frac: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl Jacobi2D {
    /// Custom decomposition.
    pub fn new(grid: Block2D) -> Self {
        Jacobi2D { grid, cost: FlopCost::default(), jitter_frac: 0.02, seed: 0x1ACB }
    }

    /// Paper-style sizing for `pes` cores: 16 chares per core (the
    /// over-decomposition §III prescribes), 160×160 points per block
    /// (≈ 160 µs of CPU per task at the default rate).
    pub fn for_pes(pes: usize) -> Self {
        assert!(pes > 0);
        let (cx, cy) = near_square_factors(16 * pes);
        Jacobi2D::new(Block2D::new(cx * 160, cy * 160, cx, cy))
    }
}

impl IterativeApp for Jacobi2D {
    fn name(&self) -> &'static str {
        "Jacobi2D"
    }

    fn num_chares(&self) -> usize {
        self.grid.num_chares()
    }

    fn neighbors(&self, idx: usize) -> Vec<usize> {
        self.grid.neighbors(idx)
    }

    fn message_bytes(&self, from: usize, to: usize) -> usize {
        self.grid.face_len(from, to) * std::mem::size_of::<f64>()
    }

    fn state_bytes(&self, idx: usize) -> usize {
        let (_, w, _, h) = self.grid.extent(idx);
        w * h * std::mem::size_of::<f64>() + 64
    }

    fn task_cost(&self, idx: usize, _iter: usize) -> f64 {
        let (_, w, _, h) = self.grid.extent(idx);
        self.cost.seconds((w * h) as f64 * FLOPS_PER_POINT)
            * chare_jitter(self.seed, idx, self.jitter_frac)
    }

    fn make_kernel(&self, idx: usize) -> Box<dyn ChareKernel> {
        Box::new(JacobiKernel::new(self.grid, idx))
    }

    fn unpack_kernel(&self, idx: usize, bytes: &[u8]) -> Option<Box<dyn ChareKernel>> {
        let mut k = JacobiKernel::new(self.grid, idx);
        let mut r = cloudlb_runtime::pup::PupReader::new(bytes);
        k.u = r.f64s();
        assert_eq!(k.u.len(), k.w * k.h, "PUP buffer does not match block shape");
        assert!(r.exhausted());
        Some(Box::new(k))
    }
}

/// Which side of a block a neighbor touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    West,
    East,
    North,
    South,
}

/// Live state of one Jacobi block.
pub struct JacobiKernel {
    w: usize,
    h: usize,
    /// `true` when the block touches the global west edge (Dirichlet 1.0).
    west_bc: bool,
    u: Vec<f64>,
    scratch: Vec<f64>,
    /// `(neighbor chare, side it sits on)`.
    sides: Vec<(usize, Side)>,
    /// Latest ghosts per side (same order as `sides`).
    ghosts: Vec<Vec<f64>>,
}

impl JacobiKernel {
    /// Build the block for chare `idx` of `grid`, initialized to zero.
    pub fn new(grid: Block2D, idx: usize) -> Self {
        let (bx, by) = grid.coords(idx);
        let (_, w, _, h) = grid.extent(idx);
        let mut sides = Vec::new();
        if bx > 0 {
            sides.push((grid.index(bx - 1, by), Side::West));
        }
        if bx + 1 < grid.cx {
            sides.push((grid.index(bx + 1, by), Side::East));
        }
        if by > 0 {
            sides.push((grid.index(bx, by - 1), Side::North));
        }
        if by + 1 < grid.cy {
            sides.push((grid.index(bx, by + 1), Side::South));
        }
        let ghosts = sides
            .iter()
            .map(|&(_, s)| match s {
                Side::West | Side::East => vec![0.0; h],
                Side::North | Side::South => vec![0.0; w],
            })
            .collect();
        JacobiKernel { w, h, west_bc: bx == 0, u: vec![0.0; w * h], scratch: vec![0.0; w * h], sides, ghosts }
    }

    fn edge(&self, side: Side) -> Vec<f64> {
        match side {
            Side::West => (0..self.h).map(|y| self.u[y * self.w]).collect(),
            Side::East => (0..self.h).map(|y| self.u[y * self.w + self.w - 1]).collect(),
            Side::North => self.u[..self.w].to_vec(),
            Side::South => self.u[(self.h - 1) * self.w..].to_vec(),
        }
    }

    fn ghost(&self, side: Side) -> Option<&[f64]> {
        self.sides
            .iter()
            .position(|&(_, s)| s == side)
            .map(|i| self.ghosts[i].as_slice())
    }

    fn relax(&mut self) {
        let (w, h) = (self.w, self.h);
        for y in 0..h {
            for x in 0..w {
                let c = self.u[y * w + x];
                let west = if x > 0 {
                    self.u[y * w + x - 1]
                } else if let Some(g) = self.ghost(Side::West) {
                    g[y]
                } else if self.west_bc {
                    WEST_BC
                } else {
                    0.0
                };
                let east = if x + 1 < w {
                    self.u[y * w + x + 1]
                } else {
                    self.ghost(Side::East).map_or(0.0, |g| g[y])
                };
                let north = if y > 0 {
                    self.u[(y - 1) * w + x]
                } else {
                    self.ghost(Side::North).map_or(0.0, |g| g[x])
                };
                let south = if y + 1 < h {
                    self.u[(y + 1) * w + x]
                } else {
                    self.ghost(Side::South).map_or(0.0, |g| g[x])
                };
                self.scratch[y * w + x] = 0.2 * (c + west + east + north + south);
            }
        }
        std::mem::swap(&mut self.u, &mut self.scratch);
    }
}

impl ChareKernel for JacobiKernel {
    fn compute(&mut self, iter: usize, inbox: &[(usize, Vec<f64>)]) -> Vec<(usize, Vec<f64>)> {
        if iter > 0 {
            for (from, data) in inbox {
                let slot = self
                    .sides
                    .iter()
                    .position(|&(nb, _)| nb == *from)
                    .unwrap_or_else(|| panic!("ghost from non-neighbor {from}"));
                debug_assert_eq!(self.ghosts[slot].len(), data.len());
                self.ghosts[slot].clone_from(data);
            }
            self.relax();
        }
        self.sides.iter().map(|&(nb, side)| (nb, self.edge(side))).collect()
    }

    fn checksum(&self) -> f64 {
        self.u.iter().sum()
    }

    fn state_bytes(&self) -> usize {
        self.u.len() * std::mem::size_of::<f64>() + 64
    }

    fn pack(&self) -> Option<Vec<u8>> {
        // Ghosts are rewritten from the inbox every iteration, so only the
        // field plane needs to travel.
        let mut w = cloudlb_runtime::pup::PupWriter::new();
        w.f64s(&self.u);
        Some(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudlb_runtime::program::validate_app;
    use cloudlb_runtime::thread_exec::serial_reference;

    fn small() -> Jacobi2D {
        Jacobi2D::new(Block2D::new(24, 24, 3, 3))
    }

    #[test]
    fn app_is_valid_and_sized() {
        validate_app(&small());
        let app = Jacobi2D::for_pes(4);
        validate_app(&app);
        assert_eq!(app.num_chares(), 64);
    }

    #[test]
    fn costs_scale_with_block_area() {
        let app = small();
        let c = app.task_cost(0, 0);
        assert!(c > 0.0);
        let big = Jacobi2D::new(Block2D::new(48, 48, 3, 3));
        assert!(big.task_cost(0, 0) > 3.0 * c, "quadrupled area ≈ 4x cost");
    }

    #[test]
    fn heat_flows_in_from_the_west_boundary() {
        let app = small();
        let sums = serial_reference(&app, 40);
        let total: f64 = sums.values().sum();
        assert!(total > 0.0, "west BC must inject heat, total {total}");
        // West-column blocks are hotter than east-column blocks.
        let west: f64 = [0, 3, 6].iter().map(|i| sums[i]).sum();
        let east: f64 = [2, 5, 8].iter().map(|i| sums[i]).sum();
        assert!(west > east, "west {west} east {east}");
    }

    #[test]
    fn serial_reference_is_deterministic() {
        let app = small();
        assert_eq!(serial_reference(&app, 10), serial_reference(&app, 10));
    }

    #[test]
    fn solution_is_bounded_by_boundary_values() {
        let app = small();
        let mut kernels: Vec<_> = (0..9).map(|i| app.make_kernel(i)).collect();
        let mut inbox: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); 9];
        for iter in 0..60 {
            let mut next: Vec<Vec<(usize, Vec<f64>)>> = vec![Vec::new(); 9];
            for (i, k) in kernels.iter_mut().enumerate() {
                for (nb, data) in k.compute(iter, &inbox[i]) {
                    assert!(data.iter().all(|v| (0.0..=WEST_BC).contains(v)), "out of range");
                    next[nb].push((i, data));
                }
            }
            inbox = next;
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn kernel_rejects_foreign_ghosts() {
        let app = small();
        let mut k = app.make_kernel(4); // center block, neighbors 1,3,5,7
        k.compute(1, &[(8, vec![0.0; 8])]);
    }
}
